#!/usr/bin/env python3
"""Determinism linter for the DMap tree.

The project promises bit-identical experiment results and byte-identical
metrics/trace exports for every ``--threads`` value (DESIGN.md "Threading
model" / "Observability"). TSan and the CI byte-diff job catch violations at
runtime; this linter rejects the constructs that cause them at review time:

  wall-clock            std::chrono::system_clock / high_resolution_clock,
                        time(), gettimeofday(), clock_gettime(), clock(),
                        localtime()/gmtime()/strftime() anywhere in src/ —
                        results must never observe the host clock.

  rand                  rand()/srand(), std::random_device,
                        std::default_random_engine (implementation-defined
                        stream) anywhere in src/ except the seeded RNG
                        wrappers in src/common/rng.* — all randomness flows
                        through seeded, fully-specified generators.

  float-accumulation    `x += ...` onto a float/double lvalue inside
                        src/obs/ — cross-worker merges must use integer
                        (fixed-point) arithmetic; float addition is not
                        associative, so the merged value would depend on the
                        worker that handled each operation.

  unordered-iteration   iterating a std::unordered_map/std::unordered_set
                        inside src/obs/ or inside any function that feeds an
                        exporter or a merged SampleSet (name matches
                        Export/Snapshot/Drain/Merge/Summarize/Csv/Json/
                        Write*, or a sharded-store merge: SizeAt/SizesBy*/
                        *StoredIn/ForEach*) — unordered iteration order is
                        implementation- and run-dependent; sort first.

Escape hatch: a construct is allowed when the same line or the line above
carries ``// lint:allow(determinism:<rule>) <reason>`` with a non-empty
reason. The markers themselves are audited: an allow naming a rule this
linter does not implement (a stale or misspelled name silently waives
nothing) or carrying no reason is a violation in its own right
(``allow-audit``).

``--baseline known.json`` suppresses findings whose fingerprint appears in
the file (schema ``dmap.lint_baseline.v1``, shared with tools/analyze);
``--json-out`` writes the remaining findings with their fingerprints for
copy-paste into a baseline. Fingerprints are line-free, so a baseline
survives unrelated edits.

Exit status: 0 when clean, 1 when violations were found, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

SOURCE_SUFFIXES = {".h", ".cc", ".cpp", ".hpp"}

# Paths (relative to --root, POSIX separators) exempt from a rule.
RULE_ALLOWLIST = {
    "rand": ("src/common/rng.h", "src/common/rng.cc"),
}

WALL_CLOCK_PATTERNS = [
    (re.compile(r"std\s*::\s*chrono\s*::\s*system_clock"),
     "std::chrono::system_clock reads the wall clock"),
    (re.compile(r"std\s*::\s*chrono\s*::\s*high_resolution_clock"),
     "std::chrono::high_resolution_clock reads a host clock"),
    (re.compile(r"(?<![\w:])(?:std\s*::\s*)?time\s*\(\s*(?:nullptr|NULL|0|&)"),
     "time() reads the wall clock"),
    (re.compile(r"(?<![\w:])gettimeofday\s*\("),
     "gettimeofday() reads the wall clock"),
    (re.compile(r"(?<![\w:])clock_gettime\s*\("),
     "clock_gettime() reads a host clock"),
    (re.compile(r"(?<![\w:])(?:std\s*::\s*)?clock\s*\(\s*\)"),
     "clock() reads host CPU time"),
    (re.compile(r"(?<![\w:])(?:std\s*::\s*)?(?:localtime|gmtime|strftime)\s*\("),
     "calendar-time conversion implies a wall-clock source"),
]

RAND_PATTERNS = [
    (re.compile(r"(?<![\w:])(?:std\s*::\s*)?s?rand\s*\("),
     "rand()/srand() is a hidden global stream; use a seeded dmap::Rng"),
    (re.compile(r"(?<![\w:])(?:std\s*::\s*)?random_device\b"),
     "std::random_device is nondeterministic; seeds come from config"),
    (re.compile(r"(?<![\w:])(?:std\s*::\s*)?default_random_engine\b"),
     "std::default_random_engine is implementation-defined; use dmap::Rng"),
]

# Function headings that mark determinism-critical merge/export paths when
# the rule is scoped by function rather than by directory.
CRITICAL_FUNCTION = re.compile(
    r"(?i)(export|snapshot|drain|merge|summari[sz]e|csv|json|write"
    # Sharded-store merge/enumeration paths: anything that folds per-shard
    # unordered maps into one externally visible value must iterate shards
    # in shard order and sort enumerations (src/core/mapping_store.cc).
    r"|sizeat|sizesby|storedin|foreach)")

# A function definition heading: return type + name + (args) + { with no
# intervening ';'. Heuristic, but C++ in this tree is clang-formatted and
# regular. The match may span lines.
FUNCTION_HEADING = re.compile(
    r"(?:^|\n)[^\n;{}#]*?[\w>\]&*]\s+([~\w]+)\s*\([^;{}]*\)"
    r"[^;{}]*\{", re.MULTILINE)

FLOAT_DECL = re.compile(r"\b(?:double|float)\s+(\w+)\s*(?:[=;,){\[]|$)")
INT_DECL = re.compile(
    r"\b(?:(?:std\s*::\s*)?u?int(?:8|16|32|64)_t|(?:std\s*::\s*)?size_t|"
    r"unsigned|int|long|short)\s+(\w+)\s*(?:[=;,){\[]|$)")
UNORDERED_DECL = re.compile(
    r"std\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<[^;]*?>\s*"
    r"[&*]?\s*(\w+)\s*(?:[=;{(),]|$)")
COMPOUND_ASSIGN = re.compile(r"([\w\]\[.>-]+)\s*\+=")
RANGE_FOR = re.compile(r"\bfor\s*\([^;)]*?:\s*(?:\w+(?:\.|->))?(\w+)\s*\)")
BEGIN_ITER = re.compile(r"\b(\w+)\s*(?:\.|->)\s*(?:c?begin|c?end)\s*\(")

ALLOW = re.compile(r"//\s*lint:allow\(determinism:([\w-]+)\)\s*(\S.*)?")

# Every rule a lint:allow may name. The allow-audit rule is deliberately
# absent: audit findings cannot be waived, and an allow naming "allow-audit"
# is itself flagged as unknown.
KNOWN_RULES = frozenset({
    "wall-clock", "rand", "float-accumulation", "unordered-iteration",
})

BASELINE_SCHEMA = "dmap.lint_baseline.v1"


class Violation:
    def __init__(self, path: Path, rel: str, line: int, rule: str,
                 message: str):
        self.path = path
        self.rel = rel
        self.line = line
        self.rule = rule
        self.message = message

    @property
    def fingerprint(self) -> str:
        # Line-free (rule::file::message), mirroring tools/analyze Finding
        # fingerprints, so baselines survive unrelated edits.
        return "::".join([f"determinism:{self.rule}", self.rel, self.message])

    def to_json(self) -> dict:
        return {"rule": self.rule, "file": self.rel, "line": self.line,
                "message": self.message, "fingerprint": self.fingerprint}

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [determinism:{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals, preserving line structure.

    Linted patterns must not fire on prose or log messages; ``lint:allow``
    markers are read from the raw text before stripping.
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            chunk = text[i:j + 2]
            out.append("".join(ch if ch == "\n" else " " for ch in chunk))
            i = j + 2
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote:
                    break
                j += 1
            j = min(j, n - 1)
            out.append(quote + " " * (j - i - 1) + quote)
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def allowed_rules(raw_lines: list[str], line_no: int) -> set[str]:
    """Rules waived for 1-based ``line_no`` via lint:allow on it or above."""
    rules = set()
    for candidate in (line_no - 1, line_no):  # the line above, then itself
        if 1 <= candidate <= len(raw_lines):
            m = ALLOW.search(raw_lines[candidate - 1])
            if m and m.group(2):  # a reason is mandatory
                rules.add(m.group(1))
    return rules


def enclosing_function(headings: list[tuple[int, str]], line_no: int) -> str:
    """Name of the function whose heading most recently precedes line_no."""
    name = ""
    for heading_line, heading_name in headings:
        if heading_line > line_no:
            break
        name = heading_name
    return name


def lint_file(path: Path, rel: str) -> list[Violation]:
    raw = path.read_text(encoding="utf-8", errors="replace")
    raw_lines = raw.splitlines()
    code = strip_comments_and_strings(raw)
    code_lines = code.splitlines()
    in_obs = rel.startswith("src/obs/")

    headings = []
    for m in FUNCTION_HEADING.finditer(code):
        headings.append((code.count("\n", 0, m.start(1)) + 1, m.group(1)))

    # Names declared float/double anywhere in the file. A name also declared
    # with an integer type is ambiguous under this text-level heuristic and
    # is not flagged — the escape hatch plus the fixtures keep the rule
    # honest without type resolution.
    float_names = set(FLOAT_DECL.findall(code)) - set(INT_DECL.findall(code))
    unordered_names = set(UNORDERED_DECL.findall(code))

    violations = []

    def report(line_no: int, rule: str, message: str) -> None:
        if rule in allowed_rules(raw_lines, line_no):
            return
        if rel in RULE_ALLOWLIST.get(rule, ()):
            return
        violations.append(Violation(path, rel, line_no, rule, message))

    # Escape-hatch audit: every lint:allow marker must name a rule this
    # linter implements and carry a reason. A stale rule name waives
    # nothing silently; surface it instead. Audit findings bypass report()
    # on purpose — they cannot themselves be waived.
    for line_no, raw_line in enumerate(raw_lines, start=1):
        m = ALLOW.search(raw_line)
        if not m:
            continue
        rule, reason = m.group(1), m.group(2)
        if rule not in KNOWN_RULES:
            violations.append(Violation(
                path, rel, line_no, "allow-audit",
                f"lint:allow names unknown rule '{rule}'; known rules: "
                + ", ".join(sorted(KNOWN_RULES))))
        if not (reason or "").strip():
            violations.append(Violation(
                path, rel, line_no, "allow-audit",
                "lint:allow requires a reason after the marker"))

    for line_no, line in enumerate(code_lines, start=1):
        for pattern, message in WALL_CLOCK_PATTERNS:
            if pattern.search(line):
                report(line_no, "wall-clock", message)
        for pattern, message in RAND_PATTERNS:
            if pattern.search(line):
                report(line_no, "rand", message)

        if in_obs:
            for m in COMPOUND_ASSIGN.finditer(line):
                lhs = m.group(1)
                # Last member in the access path: `cell.sum` -> `sum`,
                # `slab->counters[id]` -> `counters`.
                leaf = re.split(r"\.|->", lhs)[-1]
                leaf = re.sub(r"\[.*", "", leaf)
                if leaf in float_names:
                    report(
                        line_no, "float-accumulation",
                        f"`{leaf} +=` accumulates a float in a merge/export "
                        "path; use fixed-point integers (see "
                        "MetricsRegistry::kFixedPoint)")

        critical = in_obs or CRITICAL_FUNCTION.search(
            enclosing_function(headings, line_no))
        if critical:
            iterated = set(RANGE_FOR.findall(line)) | set(
                BEGIN_ITER.findall(line))
            for name in iterated & unordered_names:
                report(
                    line_no, "unordered-iteration",
                    f"iterating unordered container `{name}` in an "
                    "exporter/merge path; iteration order is "
                    "run-dependent — sort keys first")

    return violations


def collect_files(root: Path, paths: list[str]) -> list[tuple[Path, str]]:
    files = []
    targets = [root / p for p in paths] if paths else [root / "src"]
    for target in targets:
        if target.is_file():
            candidates = [target]
        elif target.is_dir():
            candidates = sorted(target.rglob("*"))
        else:
            raise FileNotFoundError(f"no such file or directory: {target}")
        for f in candidates:
            if f.is_file() and f.suffix in SOURCE_SUFFIXES:
                files.append((f, f.relative_to(root).as_posix()))
    return files


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description="Reject nondeterministic constructs in src/.")
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("paths", nargs="*",
                        help="files/dirs relative to --root (default: src)")
    parser.add_argument("--baseline", default=None,
                        help="JSON baseline of known finding fingerprints "
                             f"(schema {BASELINE_SCHEMA})")
    parser.add_argument("--json-out", default=None,
                        help="write remaining findings (with fingerprints) "
                             "as JSON")
    args = parser.parse_args(argv)

    root = Path(args.root).resolve()
    try:
        files = collect_files(root, args.paths)
    except FileNotFoundError as err:
        print(f"lint_determinism: {err}", file=sys.stderr)
        return 2

    baseline: set[str] = set()
    if args.baseline:
        try:
            data = json.loads(Path(args.baseline).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as err:
            print(f"lint_determinism: {err}", file=sys.stderr)
            return 2
        if data.get("schema") != BASELINE_SCHEMA:
            print(f"lint_determinism: {args.baseline}: unexpected schema "
                  f"{data.get('schema')!r}; expected {BASELINE_SCHEMA!r}",
                  file=sys.stderr)
            return 2
        findings = data.get("findings")
        if not isinstance(findings, list) or \
                not all(isinstance(f, str) for f in findings):
            print(f"lint_determinism: {args.baseline}: 'findings' must be a "
                  "list of fingerprint strings", file=sys.stderr)
            return 2
        baseline = set(findings)

    violations = []
    for path, rel in files:
        violations.extend(lint_file(path, rel))
    new = [v for v in violations if v.fingerprint not in baseline]
    suppressed = len(violations) - len(new)

    if args.json_out:
        Path(args.json_out).write_text(json.dumps({
            "schema": "dmap.lint_report.v1",
            "findings": [v.to_json() for v in new],
            "suppressed_by_baseline": suppressed,
        }, indent=2, sort_keys=True) + "\n", encoding="utf-8")

    for v in new:
        print(v)
    if new:
        print(f"lint_determinism: {len(new)} violation(s) in "
              f"{len(files)} file(s)"
              + (f", {suppressed} suppressed by baseline" if suppressed
                 else ""), file=sys.stderr)
        return 1
    print(f"lint_determinism: OK ({len(files)} files"
          + (f", {suppressed} suppressed by baseline" if suppressed else "")
          + ")")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
