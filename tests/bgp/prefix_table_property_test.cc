// Seed-parameterised differential testing of the LPM trie against a brute-
// force model: lookup, floor/ceiling/nearest and the ownership measure must
// agree under arbitrary announce/withdraw churn, across many random
// universes.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>

#include "bgp/prefix_table.h"
#include "common/rng.h"

namespace dmap {
namespace {

class PrefixTableSeededTest : public testing::TestWithParam<std::uint64_t> {};

TEST_P(PrefixTableSeededTest, TrieMatchesBruteForce) {
  Rng rng(GetParam());
  PrefixTable table;
  std::vector<PrefixRecord> model;

  for (int round = 0; round < 150; ++round) {
    if (!model.empty() && rng.NextBernoulli(0.35)) {
      const std::size_t idx = std::size_t(rng.NextBounded(model.size()));
      ASSERT_TRUE(table.Withdraw(model[idx].prefix));
      model.erase(model.begin() + std::ptrdiff_t(idx));
    } else {
      const int length = int(rng.NextInRange(2, 30));
      const Cidr prefix(Ipv4Address(std::uint32_t(rng.Next())), length);
      const AsId owner = AsId(rng.NextBounded(20));
      const bool exists =
          std::any_of(model.begin(), model.end(), [&](const PrefixRecord& r) {
            return r.prefix == prefix;
          });
      EXPECT_EQ(table.Announce(prefix, owner), !exists);
      if (!exists) model.push_back(PrefixRecord{prefix, owner});
    }
  }

  for (int probe = 0; probe < 800; ++probe) {
    // Half the probes are uniform; half hug announced block edges where
    // floor/ceiling bugs live.
    Ipv4Address addr(std::uint32_t(rng.Next()));
    if (!model.empty() && probe % 2 == 0) {
      const PrefixRecord& r =
          model[std::size_t(rng.NextBounded(model.size()))];
      const std::int64_t offset = rng.NextInRange(-2, 2);
      const std::uint32_t base = rng.NextBernoulli(0.5)
                                     ? r.prefix.First().value()
                                     : r.prefix.Last().value();
      addr = Ipv4Address(std::uint32_t(std::int64_t(base) + offset));
    }

    std::optional<PrefixRecord> want;
    for (const PrefixRecord& r : model) {
      if (r.prefix.Contains(addr) &&
          (!want || r.prefix.length() > want->prefix.length())) {
        want = r;
      }
    }
    const auto got = table.Lookup(addr);
    ASSERT_EQ(got.has_value(), want.has_value()) << addr.ToString();
    if (got) {
      EXPECT_EQ(got->prefix, want->prefix) << addr.ToString();
    }

    if (!model.empty()) {
      std::uint64_t best_dist = ~std::uint64_t{0};
      for (const PrefixRecord& r : model) {
        best_dist = std::min(best_dist, r.prefix.DistanceTo(addr));
      }
      const auto nearest = table.NearestAnnounced(addr);
      ASSERT_TRUE(nearest.has_value());
      EXPECT_EQ(nearest->distance, best_dist) << addr.ToString();
    } else {
      EXPECT_FALSE(table.NearestAnnounced(addr).has_value());
    }
  }

  // Ownership totals stay consistent through churn.
  std::uint64_t sum = 0;
  for (AsId as = 0; as < 20; ++as) sum += table.AddressesOwnedBy(as);
  EXPECT_EQ(sum, table.announced_addresses());
  EXPECT_EQ(table.num_prefixes(), model.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrefixTableSeededTest,
                         testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace dmap
