#include "bgp/dir24_8.h"

#include <gtest/gtest.h>

#include "bgp/prefix_gen.h"
#include "common/rng.h"

namespace dmap {
namespace {

Cidr C(const std::string& text) {
  Cidr c;
  EXPECT_TRUE(Cidr::Parse(text, &c)) << text;
  return c;
}

Ipv4Address A(const std::string& text) {
  Ipv4Address a;
  EXPECT_TRUE(Ipv4Address::Parse(text, &a)) << text;
  return a;
}

TEST(Dir24_8Test, EmptyTableIsAllHoles) {
  PrefixTable table;
  const Dir24_8 fast(table);
  EXPECT_EQ(fast.Lookup(A("1.2.3.4")), kInvalidAs);
  EXPECT_EQ(fast.num_long_chunks(), 0u);
}

TEST(Dir24_8Test, ShortPrefixesUseBaseTableOnly) {
  PrefixTable table;
  table.Announce(C("8.0.0.0/8"), 1);
  table.Announce(C("9.64.0.0/10"), 2);
  const Dir24_8 fast(table);
  EXPECT_EQ(fast.Lookup(A("8.200.1.1")), 1u);
  EXPECT_EQ(fast.Lookup(A("9.100.0.0")), 2u);
  EXPECT_EQ(fast.Lookup(A("9.0.0.0")), kInvalidAs);
  EXPECT_EQ(fast.num_long_chunks(), 0u);
}

TEST(Dir24_8Test, NestedShortPrefixesFollowLpm) {
  PrefixTable table;
  table.Announce(C("8.0.0.0/8"), 1);
  table.Announce(C("8.8.0.0/16"), 2);
  table.Announce(C("8.8.8.0/24"), 3);
  const Dir24_8 fast(table);
  EXPECT_EQ(fast.Lookup(A("8.1.1.1")), 1u);
  EXPECT_EQ(fast.Lookup(A("8.8.1.1")), 2u);
  EXPECT_EQ(fast.Lookup(A("8.8.8.200")), 3u);
}

TEST(Dir24_8Test, LongPrefixesEscapeToChunks) {
  PrefixTable table;
  table.Announce(C("10.0.0.0/24"), 1);  // note: test table, not reserved here
  table.Announce(C("10.0.0.128/25"), 2);
  table.Announce(C("10.0.0.192/26"), 3);
  table.Announce(C("10.0.0.7/32"), 4);
  const Dir24_8 fast(table);
  EXPECT_EQ(fast.num_long_chunks(), 1u);  // all share one /24 block
  EXPECT_EQ(fast.Lookup(A("10.0.0.1")), 1u);
  EXPECT_EQ(fast.Lookup(A("10.0.0.7")), 4u);
  EXPECT_EQ(fast.Lookup(A("10.0.0.130")), 2u);
  EXPECT_EQ(fast.Lookup(A("10.0.0.200")), 3u);
  EXPECT_EQ(fast.Lookup(A("10.0.1.1")), kInvalidAs);
}

TEST(Dir24_8Test, LongPrefixWithoutCoveringShortOne) {
  PrefixTable table;
  table.Announce(C("1.2.3.128/25"), 9);
  const Dir24_8 fast(table);
  EXPECT_EQ(fast.Lookup(A("1.2.3.200")), 9u);
  EXPECT_EQ(fast.Lookup(A("1.2.3.1")), kInvalidAs);  // other half is a hole
}

TEST(Dir24_8Test, AgreesWithTrieOnGeneratedTable) {
  PrefixGenParams params;
  params.num_ases = 300;
  params.seed = 11;
  const PrefixTable table = GeneratePrefixTable(params);
  const Dir24_8 fast(table);

  Rng rng(5);
  for (int i = 0; i < 200000; ++i) {
    const Ipv4Address addr(std::uint32_t(rng.Next()));
    const auto slow = table.Lookup(addr);
    const AsId want = slow ? slow->owner : kInvalidAs;
    ASSERT_EQ(fast.Lookup(addr), want) << addr.ToString();
  }
}

TEST(Dir24_8Test, EpochCountsAnnouncesAndWithdraws) {
  PrefixTable table;
  EXPECT_EQ(table.epoch(), 0u);
  EXPECT_TRUE(table.Announce(C("8.0.0.0/8"), 1));
  EXPECT_EQ(table.epoch(), 1u);
  EXPECT_TRUE(table.Announce(C("9.0.0.0/8"), 2));
  EXPECT_EQ(table.epoch(), 2u);
  // Failed mutations must NOT bump the epoch: a snapshot of the unchanged
  // table is still valid.
  EXPECT_FALSE(table.Withdraw(C("11.0.0.0/8")));
  EXPECT_EQ(table.epoch(), 2u);
  EXPECT_TRUE(table.Withdraw(C("9.0.0.0/8")));
  EXPECT_EQ(table.epoch(), 3u);
}

TEST(Dir24_8Test, SnapshotAgreesWithTrieAcrossChurn) {
  // Rebuild-after-churn contract: after every mutation batch a fresh
  // snapshot must agree with the trie everywhere we probe.
  PrefixGenParams params;
  params.num_ases = 200;
  params.seed = 21;
  PrefixTable table = GeneratePrefixTable(params);
  Rng rng(9);
  for (int round = 0; round < 4; ++round) {
    // Mutate: withdraw a few announced prefixes, announce a few fresh ones.
    const auto prefixes = table.AllPrefixes();
    for (int i = 0; i < 20 && !prefixes.empty(); ++i) {
      const auto& victim =
          prefixes[std::size_t(rng.NextBounded(prefixes.size()))];
      table.Withdraw(victim.prefix);
    }
    for (int i = 0; i < 20; ++i) {
      table.Announce(Cidr(Ipv4Address(std::uint32_t(rng.Next())),
                          int(rng.NextInRange(8, 28))),
                     AsId(rng.NextBounded(200)));
    }
    const Dir24_8 fast(table);
    for (int i = 0; i < 20000; ++i) {
      const Ipv4Address addr(std::uint32_t(rng.Next()));
      const auto slow = table.Lookup(addr);
      ASSERT_EQ(fast.Lookup(addr), slow ? slow->owner : kInvalidAs)
          << addr.ToString();
    }
  }
}

TEST(Dir24_8Test, AgreesWithTrieUnderNesting) {
  // Random nested announcements, including >24 lengths, probed at block
  // edges where the chunk logic can be off by one.
  Rng rng(6);
  PrefixTable table;
  for (int i = 0; i < 500; ++i) {
    const int length = int(rng.NextInRange(8, 32));
    table.Announce(Cidr(Ipv4Address(std::uint32_t(rng.Next())), length),
                   AsId(rng.NextBounded(50)));
  }
  const Dir24_8 fast(table);
  for (const PrefixRecord& record : table.AllPrefixes()) {
    for (const Ipv4Address addr :
         {record.prefix.First(), record.prefix.Last(),
          Ipv4Address(record.prefix.First().value() +
                      std::uint32_t(record.prefix.Size() / 2))}) {
      const auto slow = table.Lookup(addr);
      ASSERT_TRUE(slow.has_value());
      EXPECT_EQ(fast.Lookup(addr), slow->owner) << addr.ToString();
    }
  }
}

}  // namespace
}  // namespace dmap
