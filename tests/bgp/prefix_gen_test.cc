#include "bgp/prefix_gen.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"

namespace dmap {
namespace {

PrefixGenParams SmallParams(std::uint32_t ases = 200) {
  PrefixGenParams p;
  p.num_ases = ases;
  p.seed = 5;
  return p;
}

TEST(PrefixGenTest, HitsAnnouncedFractionTarget) {
  const PrefixTable table = GeneratePrefixTable(SmallParams());
  EXPECT_NEAR(table.announced_fraction(), 0.52, 0.02);
}

TEST(PrefixGenTest, CustomFraction) {
  PrefixGenParams p = SmallParams();
  p.announced_fraction = 0.30;
  const PrefixTable table = GeneratePrefixTable(p);
  EXPECT_NEAR(table.announced_fraction(), 0.30, 0.02);
}

TEST(PrefixGenTest, EveryAsAnnouncesSomething) {
  const PrefixGenParams p = SmallParams();
  const PrefixTable table = GeneratePrefixTable(p);
  for (AsId as = 0; as < p.num_ases; ++as) {
    EXPECT_GT(table.AddressesOwnedBy(as), 0u) << "AS " << as;
  }
}

TEST(PrefixGenTest, ReservedRangesNeverAnnounced) {
  const PrefixTable table = GeneratePrefixTable(SmallParams());
  for (const Cidr& reserved : ReservedRanges()) {
    EXPECT_FALSE(table.Lookup(reserved.First()).has_value())
        << reserved.ToString();
    EXPECT_FALSE(table.Lookup(reserved.Last()).has_value())
        << reserved.ToString();
    // Sample the middle too.
    const Ipv4Address mid(reserved.base().value() +
                          std::uint32_t(reserved.Size() / 2));
    EXPECT_FALSE(table.Lookup(mid).has_value()) << reserved.ToString();
  }
}

TEST(PrefixGenTest, PrefixesAreNonOverlapping) {
  const PrefixTable table = GeneratePrefixTable(SmallParams());
  const auto all = table.AllPrefixes();
  // ForEachPrefix yields increasing base order; adjacent blocks must not
  // overlap (the generator allocates disjoint blocks).
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_GT(all[i].prefix.First().value(),
              all[i - 1].prefix.Last().value())
        << all[i - 1].prefix.ToString() << " overlaps "
        << all[i].prefix.ToString();
  }
}

TEST(PrefixGenTest, ShareIsHeavyTailed) {
  const PrefixGenParams p = SmallParams(500);
  const PrefixTable table = GeneratePrefixTable(p);
  std::vector<std::uint64_t> shares;
  for (AsId as = 0; as < p.num_ases; ++as) {
    shares.push_back(table.AddressesOwnedBy(as));
  }
  std::sort(shares.begin(), shares.end());
  // Top 10% of ASs own far more than the bottom 10%.
  std::uint64_t top = 0, bottom = 0;
  for (std::size_t i = 0; i < shares.size() / 10; ++i) {
    bottom += shares[i];
    top += shares[shares.size() - 1 - i];
  }
  EXPECT_GT(top, bottom * 5);
}

TEST(PrefixGenTest, DeterministicForSeed) {
  const PrefixTable a = GeneratePrefixTable(SmallParams());
  const PrefixTable b = GeneratePrefixTable(SmallParams());
  EXPECT_EQ(a.num_prefixes(), b.num_prefixes());
  EXPECT_EQ(a.announced_addresses(), b.announced_addresses());
  const auto pa = a.AllPrefixes();
  const auto pb = b.AllPrefixes();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].prefix, pb[i].prefix);
    EXPECT_EQ(pa[i].owner, pb[i].owner);
  }
}

TEST(PrefixGenTest, RandomAddressHitRateMatchesFraction) {
  // The IP-hole probability experienced by hashed GUIDs must equal
  // 1 - announced_fraction.
  const PrefixTable table = GeneratePrefixTable(SmallParams());
  Rng rng(9);
  int hits = 0;
  constexpr int kProbes = 20000;
  for (int i = 0; i < kProbes; ++i) {
    if (table.Lookup(Ipv4Address(std::uint32_t(rng.Next())))) ++hits;
  }
  EXPECT_NEAR(double(hits) / kProbes, table.announced_fraction(), 0.01);
}

TEST(PrefixGenTest, ValidationErrors) {
  PrefixGenParams p = SmallParams();
  p.num_ases = 0;
  EXPECT_THROW(GeneratePrefixTable(p), std::invalid_argument);
  p = SmallParams();
  p.announced_fraction = 0.95;  // exceeds non-reserved space
  EXPECT_THROW(GeneratePrefixTable(p), std::invalid_argument);
}

TEST(PrefixGenTest, PrefixCountScalesRealistically) {
  // At full scale the paper's table has ~330k prefixes; our default mix
  // should land in the right order of magnitude (see DESIGN.md).
  const PrefixTable table = GeneratePrefixTable(SmallParams());
  EXPECT_GT(table.num_prefixes(), 100'000u);
  EXPECT_LT(table.num_prefixes(), 600'000u);
}

}  // namespace
}  // namespace dmap
