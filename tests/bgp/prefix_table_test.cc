#include "bgp/prefix_table.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/rng.h"

namespace dmap {
namespace {

Cidr C(const std::string& text) {
  Cidr c;
  EXPECT_TRUE(Cidr::Parse(text, &c)) << text;
  return c;
}

Ipv4Address A(const std::string& text) {
  Ipv4Address a;
  EXPECT_TRUE(Ipv4Address::Parse(text, &a)) << text;
  return a;
}

TEST(PrefixTableTest, EmptyTableBehaviour) {
  PrefixTable table;
  EXPECT_EQ(table.num_prefixes(), 0u);
  EXPECT_EQ(table.announced_addresses(), 0u);
  EXPECT_FALSE(table.Lookup(A("1.2.3.4")).has_value());
  EXPECT_FALSE(table.NearestAnnounced(A("1.2.3.4")).has_value());
  EXPECT_FALSE(table.FloorAnnounced(A("1.2.3.4")).has_value());
  EXPECT_FALSE(table.CeilAnnounced(A("1.2.3.4")).has_value());
}

TEST(PrefixTableTest, LookupMatchesMostSpecific) {
  PrefixTable table;
  ASSERT_TRUE(table.Announce(C("8.0.0.0/8"), 1));
  ASSERT_TRUE(table.Announce(C("8.8.0.0/16"), 2));
  ASSERT_TRUE(table.Announce(C("8.8.8.0/24"), 3));

  EXPECT_EQ(table.Lookup(A("8.1.1.1"))->owner, 1u);
  EXPECT_EQ(table.Lookup(A("8.8.1.1"))->owner, 2u);
  EXPECT_EQ(table.Lookup(A("8.8.8.8"))->owner, 3u);
  EXPECT_EQ(table.Lookup(A("8.8.8.8"))->prefix, C("8.8.8.0/24"));
  EXPECT_FALSE(table.Lookup(A("9.0.0.0")).has_value());
}

TEST(PrefixTableTest, DuplicateAnnounceRejected) {
  PrefixTable table;
  ASSERT_TRUE(table.Announce(C("10.0.0.0/8"), 1));
  EXPECT_FALSE(table.Announce(C("10.0.0.0/8"), 2));
  EXPECT_EQ(table.Lookup(A("10.1.1.1"))->owner, 1u);
  EXPECT_EQ(table.num_prefixes(), 1u);
}

TEST(PrefixTableTest, WithdrawRemovesOnlyExactPrefix) {
  PrefixTable table;
  table.Announce(C("8.0.0.0/8"), 1);
  table.Announce(C("8.8.0.0/16"), 2);
  EXPECT_TRUE(table.Withdraw(C("8.8.0.0/16")));
  EXPECT_EQ(table.Lookup(A("8.8.1.1"))->owner, 1u);  // falls back to /8
  EXPECT_FALSE(table.Withdraw(C("8.8.0.0/16")));     // already gone
  EXPECT_FALSE(table.Withdraw(C("9.0.0.0/8")));      // never announced
  EXPECT_EQ(table.num_prefixes(), 1u);
}

TEST(PrefixTableTest, WithdrawPrunesAndReannounceWorks) {
  PrefixTable table;
  table.Announce(C("8.8.8.0/24"), 1);
  EXPECT_TRUE(table.Withdraw(C("8.8.8.0/24")));
  EXPECT_FALSE(table.Lookup(A("8.8.8.1")).has_value());
  EXPECT_TRUE(table.Announce(C("8.8.8.0/24"), 9));
  EXPECT_EQ(table.Lookup(A("8.8.8.1"))->owner, 9u);
}

TEST(PrefixTableTest, AnnouncedAddressCountsNestedOnce) {
  PrefixTable table;
  table.Announce(C("8.0.0.0/8"), 1);
  EXPECT_EQ(table.announced_addresses(), 1ull << 24);
  table.Announce(C("8.8.0.0/16"), 2);  // nested: no new coverage
  EXPECT_EQ(table.announced_addresses(), 1ull << 24);
  table.Announce(C("9.0.0.0/16"), 3);
  EXPECT_EQ(table.announced_addresses(), (1ull << 24) + (1ull << 16));
}

TEST(PrefixTableTest, OwnershipSubtractsNestedBlocks) {
  PrefixTable table;
  table.Announce(C("8.0.0.0/8"), 1);
  table.Announce(C("8.8.0.0/16"), 2);
  // AS 1 owns the /8 minus the /16 that AS 2 carved out.
  EXPECT_EQ(table.AddressesOwnedBy(1), (1ull << 24) - (1ull << 16));
  EXPECT_EQ(table.AddressesOwnedBy(2), 1ull << 16);
  EXPECT_EQ(table.AddressesOwnedBy(99), 0u);
}

TEST(PrefixTableTest, NearestInsideAnnouncedIsZero) {
  PrefixTable table;
  table.Announce(C("8.0.0.0/8"), 1);
  const auto r = table.NearestAnnounced(A("8.4.4.4"));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->distance, 0u);
  EXPECT_EQ(r->record.owner, 1u);
  EXPECT_EQ(r->address, A("8.4.4.4"));
}

TEST(PrefixTableTest, NearestPicksCloserSide) {
  PrefixTable table;
  table.Announce(C("10.0.0.0/24"), 1);   // 10.0.0.0 - 10.0.0.255
  table.Announce(C("10.0.2.0/24"), 2);   // 10.0.2.0 - 10.0.2.255

  // Just above block 1: floor is nearer.
  auto r = table.NearestAnnounced(A("10.0.1.10"));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->record.owner, 1u);
  EXPECT_EQ(r->address, A("10.0.0.255"));
  EXPECT_EQ(r->distance, 11u);

  // Just below block 2: ceiling is nearer.
  r = table.NearestAnnounced(A("10.0.1.250"));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->record.owner, 2u);
  EXPECT_EQ(r->address, A("10.0.2.0"));
  EXPECT_EQ(r->distance, 6u);
}

TEST(PrefixTableTest, NearestTieBreaksTowardLowerAddress) {
  PrefixTable table;
  table.Announce(C("10.0.0.0/24"), 1);
  table.Announce(C("10.0.2.0/24"), 2);
  // 10.0.1.127 is 128 above 10.0.0.255 and 129 below 10.0.2.0 -> floor.
  // 10.0.1.128 is 129 above floor and 128 below ceiling -> ceiling.
  auto r = table.NearestAnnounced(A("10.0.1.127"));
  EXPECT_EQ(r->record.owner, 1u);
  r = table.NearestAnnounced(A("10.0.1.128"));
  EXPECT_EQ(r->record.owner, 2u);
}

TEST(PrefixTableTest, FloorCeilingAtSpaceEdges) {
  PrefixTable table;
  table.Announce(C("128.0.0.0/24"), 1);
  // Below every announcement: no floor, only ceiling.
  EXPECT_FALSE(table.FloorAnnounced(A("1.0.0.0")).has_value());
  const auto ceil = table.CeilAnnounced(A("1.0.0.0"));
  ASSERT_TRUE(ceil.has_value());
  EXPECT_EQ(ceil->address, A("128.0.0.0"));
  // Above everything: no ceiling, only floor.
  EXPECT_FALSE(table.CeilAnnounced(A("200.0.0.0")).has_value());
  const auto floor = table.FloorAnnounced(A("200.0.0.0"));
  ASSERT_TRUE(floor.has_value());
  EXPECT_EQ(floor->address, A("128.0.0.255"));
  // Nearest still resolves on one-sided tables.
  EXPECT_EQ(table.NearestAnnounced(A("200.0.0.0"))->record.owner, 1u);
}

TEST(PrefixTableTest, NearestCorrectUnderNesting) {
  // The failure mode of naive sorted-by-base scans: a nested block's Last()
  // is smaller than its parent's. Floor of an address above the parent must
  // be the parent's last address, not the nested block's.
  PrefixTable table;
  table.Announce(C("10.0.0.0/8"), 1);
  table.Announce(C("10.1.0.0/16"), 2);  // nested
  const auto floor = table.FloorAnnounced(A("11.0.0.1"));
  ASSERT_TRUE(floor.has_value());
  EXPECT_EQ(floor->address, A("10.255.255.255"));
  EXPECT_EQ(floor->record.owner, 1u);
}

TEST(PrefixTableTest, ForEachPrefixOrderedAndComplete) {
  PrefixTable table;
  table.Announce(C("9.0.0.0/8"), 3);
  table.Announce(C("8.8.0.0/16"), 2);
  table.Announce(C("8.0.0.0/8"), 1);
  const auto all = table.AllPrefixes();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].prefix, C("8.0.0.0/8"));   // shorter first at same base
  EXPECT_EQ(all[1].prefix, C("8.8.0.0/16"));
  EXPECT_EQ(all[2].prefix, C("9.0.0.0/8"));
  EXPECT_EQ(all[0].owner, 1u);
}

TEST(PrefixTableTest, SlashZeroDefaultRoute) {
  PrefixTable table;
  table.Announce(C("0.0.0.0/0"), 7);
  EXPECT_EQ(table.Lookup(A("123.45.67.89"))->owner, 7u);
  EXPECT_EQ(table.announced_addresses(), 1ull << 32);
  table.Announce(C("8.0.0.0/8"), 1);
  EXPECT_EQ(table.Lookup(A("8.1.1.1"))->owner, 1u);
  EXPECT_EQ(table.AddressesOwnedBy(7), (1ull << 32) - (1ull << 24));
}

TEST(PrefixTableTest, Slash32HostRoute) {
  PrefixTable table;
  table.Announce(C("1.2.3.4/32"), 5);
  EXPECT_EQ(table.Lookup(A("1.2.3.4"))->owner, 5u);
  EXPECT_FALSE(table.Lookup(A("1.2.3.5")).has_value());
  EXPECT_EQ(table.announced_addresses(), 1u);
}

TEST(PrefixTableTest, InvalidOwnerThrows) {
  PrefixTable table;
  EXPECT_THROW(table.Announce(C("1.0.0.0/8"), kInvalidAs),
               std::invalid_argument);
}

// Randomised differential test: the trie must agree with a brute-force
// model on lookup, floor, ceiling, nearest, and ownership measures.
TEST(PrefixTablePropertyTest, MatchesBruteForceModel) {
  Rng rng(2024);
  PrefixTable table;
  std::vector<PrefixRecord> model;

  // Random announce/withdraw churn.
  for (int round = 0; round < 300; ++round) {
    if (!model.empty() && rng.NextBernoulli(0.3)) {
      const std::size_t idx = std::size_t(rng.NextBounded(model.size()));
      ASSERT_TRUE(table.Withdraw(model[idx].prefix));
      model.erase(model.begin() + std::ptrdiff_t(idx));
    } else {
      const int length = int(rng.NextInRange(4, 28));
      const Cidr prefix(Ipv4Address(std::uint32_t(rng.Next())), length);
      const AsId owner = AsId(rng.NextBounded(50));
      const bool exists =
          std::any_of(model.begin(), model.end(), [&](const PrefixRecord& r) {
            return r.prefix == prefix;
          });
      EXPECT_EQ(table.Announce(prefix, owner), !exists);
      if (!exists) model.push_back(PrefixRecord{prefix, owner});
    }
  }
  ASSERT_EQ(table.num_prefixes(), model.size());

  // Brute-force helpers over the model.
  const auto brute_lookup = [&](Ipv4Address addr)
      -> std::optional<PrefixRecord> {
    std::optional<PrefixRecord> best;
    for (const PrefixRecord& r : model) {
      if (r.prefix.Contains(addr) &&
          (!best || r.prefix.length() > best->prefix.length())) {
        best = r;
      }
    }
    return best;
  };

  for (int probe = 0; probe < 2000; ++probe) {
    const Ipv4Address addr(std::uint32_t(rng.Next()));
    const auto got = table.Lookup(addr);
    const auto want = brute_lookup(addr);
    ASSERT_EQ(got.has_value(), want.has_value()) << addr.ToString();
    if (got) {
      EXPECT_EQ(got->prefix, want->prefix) << addr.ToString();
      EXPECT_EQ(got->owner, want->owner);
    }

    // Brute-force nearest announced address.
    if (!model.empty()) {
      std::uint64_t best_dist = ~std::uint64_t{0};
      Ipv4Address best_addr;
      for (const PrefixRecord& r : model) {
        const std::uint64_t d = r.prefix.DistanceTo(addr);
        Ipv4Address candidate = addr;
        if (d != 0) {
          candidate = addr.value() < r.prefix.base().value()
                          ? r.prefix.First()
                          : r.prefix.Last();
        }
        if (d < best_dist ||
            (d == best_dist && candidate.value() < best_addr.value())) {
          best_dist = d;
          best_addr = candidate;
        }
      }
      const auto nearest = table.NearestAnnounced(addr);
      ASSERT_TRUE(nearest.has_value());
      EXPECT_EQ(nearest->distance, best_dist) << addr.ToString();
      EXPECT_EQ(nearest->address.value(), best_addr.value())
          << addr.ToString();
    }
  }

  // Ownership measure: every owner's address count must equal a sampled
  // LPM census (statistically) and total coverage must match exactly via
  // a full interval sweep on a smaller model — here we verify totals are
  // internally consistent instead.
  std::uint64_t sum = 0;
  for (AsId as = 0; as < 50; ++as) sum += table.AddressesOwnedBy(as);
  EXPECT_EQ(sum, table.announced_addresses());
}

}  // namespace
}  // namespace dmap
