#include "bgp/churn.h"

#include <gtest/gtest.h>

#include "bgp/prefix_gen.h"

namespace dmap {
namespace {

PrefixTable SmallTable() {
  PrefixGenParams p;
  p.num_ases = 100;
  p.seed = 21;
  return GeneratePrefixTable(p);
}

TEST(ChurnTest, PlanSizesMatchFractions) {
  const PrefixTable table = SmallTable();
  Rng rng(1);
  ChurnParams params;
  params.withdraw_fraction = 0.02;
  params.announce_fraction = 0.01;
  params.num_ases = 100;
  const ChurnPlan plan = SampleChurn(table, params, rng);
  EXPECT_EQ(plan.withdrawals.size(),
            std::size_t(0.02 * double(table.num_prefixes())));
  EXPECT_EQ(plan.announcements.size(),
            std::size_t(0.01 * double(table.num_prefixes())));
}

TEST(ChurnTest, WithdrawalsAreDistinctAndPresent) {
  const PrefixTable table = SmallTable();
  Rng rng(2);
  ChurnParams params;
  params.withdraw_fraction = 0.05;
  params.num_ases = 100;
  const ChurnPlan plan = SampleChurn(table, params, rng);
  for (std::size_t i = 0; i < plan.withdrawals.size(); ++i) {
    EXPECT_TRUE(table.Lookup(plan.withdrawals[i].prefix.First()).has_value());
    for (std::size_t j = i + 1; j < plan.withdrawals.size(); ++j) {
      EXPECT_NE(plan.withdrawals[i].prefix, plan.withdrawals[j].prefix);
    }
  }
}

TEST(ChurnTest, AnnouncementsLandInHoles) {
  const PrefixTable table = SmallTable();
  Rng rng(3);
  ChurnParams params;
  params.announce_fraction = 0.01;
  params.num_ases = 100;
  const ChurnPlan plan = SampleChurn(table, params, rng);
  for (const PrefixRecord& r : plan.announcements) {
    EXPECT_EQ(r.prefix.length(), 24);
    EXPECT_FALSE(table.Lookup(r.prefix.First()).has_value());
    EXPECT_FALSE(table.Lookup(r.prefix.Last()).has_value());
    EXPECT_LT(r.owner, 100u);
  }
}

TEST(ChurnTest, ApplyChangesTable) {
  PrefixTable table = SmallTable();
  const std::size_t before = table.num_prefixes();
  Rng rng(4);
  ChurnParams params;
  params.withdraw_fraction = 0.02;
  params.announce_fraction = 0.02;
  params.num_ases = 100;
  const ChurnPlan plan = SampleChurn(table, params, rng);
  ApplyChurn(table, plan);
  EXPECT_EQ(table.num_prefixes(), before - plan.withdrawals.size() +
                                      plan.announcements.size());
  // Withdrawn space is gone; announced space is live.
  for (const PrefixRecord& r : plan.withdrawals) {
    const auto hit = table.Lookup(r.prefix.First());
    if (hit) {
      EXPECT_NE(hit->prefix, r.prefix);
    }
  }
  for (const PrefixRecord& r : plan.announcements) {
    const auto hit = table.Lookup(r.prefix.First());
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->owner, r.owner);
  }
}

TEST(ChurnTest, ApplyMismatchedPlanThrows) {
  PrefixTable table = SmallTable();
  ChurnPlan bogus;
  bogus.withdrawals.push_back(
      PrefixRecord{Cidr(Ipv4Address::FromOctets(127, 0, 0, 0), 8), 1});
  EXPECT_THROW(ApplyChurn(table, bogus), std::logic_error);

  ChurnPlan collision;
  collision.announcements.push_back(table.AllPrefixes().front());
  EXPECT_THROW(ApplyChurn(table, collision), std::logic_error);
}

TEST(ChurnTest, SpaceWeightedWithdrawalCoversRequestedFraction) {
  const PrefixTable table = SmallTable();
  Rng rng(7);
  ChurnParams params;
  params.withdraw_space_fraction = 0.05;
  params.num_ases = 100;
  const ChurnPlan plan = SampleChurn(table, params, rng);
  std::uint64_t covered = 0;
  for (const PrefixRecord& r : plan.withdrawals) covered += r.prefix.Size();
  const double fraction =
      double(covered) / double(table.announced_addresses());
  // At least the target, with overshoot bounded by the largest block.
  EXPECT_GE(fraction, 0.05);
  EXPECT_LT(fraction, 0.07);
}

TEST(ChurnTest, SpaceAndCountFractionsAreExclusive) {
  const PrefixTable table = SmallTable();
  Rng rng(8);
  ChurnParams params;
  params.withdraw_fraction = 0.01;
  params.withdraw_space_fraction = 0.01;
  EXPECT_THROW(SampleChurn(table, params, rng), std::invalid_argument);
}

TEST(ChurnTest, ZeroChurnIsEmptyPlan) {
  const PrefixTable table = SmallTable();
  Rng rng(5);
  const ChurnPlan plan = SampleChurn(table, ChurnParams{}, rng);
  EXPECT_TRUE(plan.withdrawals.empty());
  EXPECT_TRUE(plan.announcements.empty());
}

TEST(ChurnTest, BadFractionsThrow) {
  const PrefixTable table = SmallTable();
  Rng rng(6);
  ChurnParams params;
  params.withdraw_fraction = -0.1;
  EXPECT_THROW(SampleChurn(table, params, rng), std::invalid_argument);
  params.withdraw_fraction = 1.5;
  EXPECT_THROW(SampleChurn(table, params, rng), std::invalid_argument);
}

}  // namespace
}  // namespace dmap
