#include "bgp/io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "bgp/prefix_gen.h"
#include "common/rng.h"

namespace dmap {
namespace {

TEST(PrefixTableIoTest, RoundTripGeneratedTable) {
  PrefixGenParams params;
  params.num_ases = 200;
  params.seed = 9;
  const PrefixTable original = GeneratePrefixTable(params);

  std::stringstream buffer;
  SavePrefixTable(original, buffer);
  const PrefixTable loaded = LoadPrefixTable(buffer);

  ASSERT_EQ(loaded.num_prefixes(), original.num_prefixes());
  EXPECT_EQ(loaded.announced_addresses(), original.announced_addresses());
  // Differential probes: identical LPM everywhere.
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    const Ipv4Address addr(std::uint32_t(rng.Next()));
    const auto a = original.Lookup(addr);
    const auto b = loaded.Lookup(addr);
    ASSERT_EQ(a.has_value(), b.has_value()) << addr.ToString();
    if (a) {
      EXPECT_EQ(a->prefix, b->prefix);
      EXPECT_EQ(a->owner, b->owner);
    }
  }
}

TEST(PrefixTableIoTest, NestedPrefixesSurvive) {
  PrefixTable table;
  Cidr c;
  ASSERT_TRUE(Cidr::Parse("8.0.0.0/8", &c));
  table.Announce(c, 1);
  ASSERT_TRUE(Cidr::Parse("8.8.0.0/16", &c));
  table.Announce(c, 2);

  std::stringstream buffer;
  SavePrefixTable(table, buffer);
  const PrefixTable loaded = LoadPrefixTable(buffer);
  Ipv4Address addr;
  ASSERT_TRUE(Ipv4Address::Parse("8.8.1.1", &addr));
  EXPECT_EQ(loaded.Lookup(addr)->owner, 2u);
  ASSERT_TRUE(Ipv4Address::Parse("8.1.1.1", &addr));
  EXPECT_EQ(loaded.Lookup(addr)->owner, 1u);
}

TEST(PrefixTableIoTest, EmptyTableRoundTrips) {
  std::stringstream buffer;
  SavePrefixTable(PrefixTable{}, buffer);
  EXPECT_EQ(LoadPrefixTable(buffer).num_prefixes(), 0u);
}

TEST(PrefixTableIoTest, RejectsMalformedInput) {
  {
    std::stringstream s("wrong magic\n");
    EXPECT_THROW(LoadPrefixTable(s), std::runtime_error);
  }
  {
    std::stringstream s("dmap-prefixes v1\nprefixes 1\n");
    EXPECT_THROW(LoadPrefixTable(s), std::runtime_error);  // truncated
  }
  {
    std::stringstream s("dmap-prefixes v1\nprefixes 1\nprefix nonsense 3\n");
    EXPECT_THROW(LoadPrefixTable(s), std::runtime_error);
  }
  {
    std::stringstream s(
        "dmap-prefixes v1\nprefixes 2\n"
        "prefix 8.0.0.0/8 1\nprefix 8.0.0.0/8 2\n");
    EXPECT_THROW(LoadPrefixTable(s), std::runtime_error);  // duplicate
  }
}

TEST(PrefixTableIoTest, FileRoundTrip) {
  PrefixTable table;
  Cidr c;
  ASSERT_TRUE(Cidr::Parse("1.0.0.0/8", &c));
  table.Announce(c, 7);
  const std::string path = testing::TempDir() + "/prefixes_test.txt";
  SavePrefixTableToFile(table, path);
  EXPECT_EQ(LoadPrefixTableFromFile(path).num_prefixes(), 1u);
  EXPECT_THROW(LoadPrefixTableFromFile("/no/such/file"), std::runtime_error);
}

}  // namespace
}  // namespace dmap
