#include "proto/messages.h"

#include <gtest/gtest.h>

namespace dmap {
namespace {

MappingEntry MakeEntry(int nas = 2) {
  MappingEntry entry;
  entry.version = 42;
  for (int i = 0; i < nas; ++i) {
    entry.nas.Add(NetworkAddress{AsId(100 + i), std::uint32_t(1000 + i)});
  }
  return entry;
}

template <typename T>
T RoundTrip(const T& message) {
  const std::vector<std::uint8_t> wire = Encode(Message{message});
  const std::optional<Message> decoded = Decode(wire);
  EXPECT_TRUE(decoded.has_value());
  const T* typed = std::get_if<T>(&*decoded);
  EXPECT_NE(typed, nullptr);
  return *typed;
}

TEST(MessagesTest, InsertRequestRoundTrip) {
  InsertRequest m;
  m.header = MessageHeader{0xdeadbeefcafeULL, 7, 9};
  m.guid = Guid::FromSequence(5);
  m.entry = MakeEntry(3);
  const InsertRequest back = RoundTrip(m);
  EXPECT_EQ(back.header.request_id, m.header.request_id);
  EXPECT_EQ(back.header.src, 7u);
  EXPECT_EQ(back.header.dst, 9u);
  EXPECT_EQ(back.guid, m.guid);
  EXPECT_EQ(back.entry, m.entry);
}

TEST(MessagesTest, InsertAckRoundTrip) {
  InsertAck m;
  m.header = MessageHeader{1, 2, 3};
  m.guid = Guid::FromSequence(6);
  m.applied = true;
  const InsertAck back = RoundTrip(m);
  EXPECT_TRUE(back.applied);
  EXPECT_EQ(back.guid, m.guid);
}

TEST(MessagesTest, LookupRequestRoundTrip) {
  LookupRequest m;
  m.header = MessageHeader{11, 22, 33};
  m.guid = Guid::FromSequence(7);
  const LookupRequest back = RoundTrip(m);
  EXPECT_EQ(back.guid, m.guid);
}

TEST(MessagesTest, LookupResponseFoundAndMissing) {
  LookupResponse found;
  found.header = MessageHeader{1, 2, 3};
  found.guid = Guid::FromSequence(8);
  found.found = true;
  found.entry = MakeEntry(1);
  const LookupResponse back = RoundTrip(found);
  EXPECT_TRUE(back.found);
  EXPECT_EQ(back.entry, found.entry);

  LookupResponse missing;
  missing.header = MessageHeader{4, 5, 6};
  missing.guid = Guid::FromSequence(9);
  missing.found = false;
  const LookupResponse back2 = RoundTrip(missing);
  EXPECT_FALSE(back2.found);
  // The missing variant must be shorter (no entry payload).
  EXPECT_LT(EncodedSize(Message{missing}), EncodedSize(Message{found}));
}

TEST(MessagesTest, MigrateRoundTrips) {
  MigrateRequest req;
  req.header = MessageHeader{9, 8, 7};
  req.guid = Guid::FromSequence(10);
  EXPECT_EQ(RoundTrip(req).guid, req.guid);

  MigrateResponse resp;
  resp.header = MessageHeader{9, 7, 8};
  resp.guid = Guid::FromSequence(10);
  resp.found = true;
  resp.entry = MakeEntry(5);
  const MigrateResponse back = RoundTrip(resp);
  EXPECT_TRUE(back.found);
  EXPECT_EQ(back.entry.nas.size(), 5);
}

TEST(MessagesTest, BatchUpdateRequestRoundTrip) {
  BatchUpdateRequest m;
  m.header = MessageHeader{77, 3, 12};
  for (int i = 0; i < 5; ++i) {
    BatchUpdateEntry e;
    e.guid = Guid::FromSequence(std::uint64_t(100 + i));
    e.entry = MakeEntry(1 + i % NaSet::kMaxNas);
    e.entry.version = std::uint64_t(7 + i);
    e.stored_address = Ipv4Address(std::uint32_t(0x0a000000 + i));
    m.entries.push_back(e);
  }
  const BatchUpdateRequest back = RoundTrip(m);
  ASSERT_EQ(back.entries.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(back.entries[std::size_t(i)].guid, m.entries[std::size_t(i)].guid);
    EXPECT_EQ(back.entries[std::size_t(i)].entry,
              m.entries[std::size_t(i)].entry);
    EXPECT_EQ(back.entries[std::size_t(i)].stored_address.value(),
              m.entries[std::size_t(i)].stored_address.value());
  }
  // The batch amortises the per-message header: 5 entries in one frame
  // must be smaller than 5 singleton InsertRequests.
  std::size_t singleton_total = 0;
  for (const BatchUpdateEntry& e : m.entries) {
    singleton_total += EncodedSize(
        Message{InsertRequest{m.header, e.guid, e.entry, e.stored_address}});
  }
  EXPECT_LT(EncodedSize(Message{m}), singleton_total);
}

TEST(MessagesTest, BatchUpdateResponseRoundTrip) {
  BatchUpdateResponse m;
  m.header = MessageHeader{78, 12, 3};
  for (int i = 0; i < 4; ++i) {
    m.guids.push_back(Guid::FromSequence(std::uint64_t(200 + i)));
    m.applied.push_back(i % 2 == 0 ? 1 : 0);
  }
  const BatchUpdateResponse back = RoundTrip(m);
  ASSERT_EQ(back.guids.size(), 4u);
  ASSERT_EQ(back.applied.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(back.guids[std::size_t(i)], m.guids[std::size_t(i)]);
    EXPECT_EQ(back.applied[std::size_t(i)], m.applied[std::size_t(i)]);
  }
}

TEST(MessagesTest, EmptyBatchRoundTrips) {
  BatchUpdateRequest m;
  m.header = MessageHeader{79, 1, 2};
  EXPECT_TRUE(RoundTrip(m).entries.empty());
}

TEST(MessagesTest, BatchDecodeRejectsTruncationAndNonBooleanFlag) {
  BatchUpdateRequest m;
  m.header = MessageHeader{80, 1, 2};
  BatchUpdateEntry e;
  e.guid = Guid::FromSequence(300);
  e.entry = MakeEntry(2);
  m.entries.push_back(e);
  const std::vector<std::uint8_t> wire = Encode(Message{m});
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(
        Decode(std::span<const std::uint8_t>(wire.data(), len)).has_value())
        << "prefix of length " << len << " decoded";
  }

  BatchUpdateResponse resp;
  resp.header = MessageHeader{81, 2, 1};
  resp.guids.push_back(e.guid);
  resp.applied.push_back(1);
  std::vector<std::uint8_t> resp_wire = Encode(Message{resp});
  resp_wire.back() = 2;  // applied flag must be 0/1
  EXPECT_FALSE(Decode(resp_wire).has_value());
}

TEST(MessagesTest, TypeOfAndHeaderAccessors) {
  Message m = LookupRequest{MessageHeader{1, 2, 3}, Guid::FromSequence(1)};
  EXPECT_EQ(TypeOf(m), MessageType::kLookupRequest);
  EXPECT_EQ(HeaderOf(m).src, 2u);
  MutableHeaderOf(m).dst = 99;
  EXPECT_EQ(HeaderOf(m).dst, 99u);
}

TEST(MessagesTest, DecodeRejectsBadMagicAndVersion) {
  LookupRequest m;
  m.guid = Guid::FromSequence(1);
  std::vector<std::uint8_t> wire = Encode(Message{m});
  auto corrupted = wire;
  corrupted[0] ^= 0xff;
  EXPECT_FALSE(Decode(corrupted).has_value());
  corrupted = wire;
  corrupted[2] = 99;  // version
  EXPECT_FALSE(Decode(corrupted).has_value());
  corrupted = wire;
  corrupted[3] = 0;  // invalid type
  EXPECT_FALSE(Decode(corrupted).has_value());
}

TEST(MessagesTest, DecodeRejectsEveryTruncation) {
  InsertRequest m;
  m.header = MessageHeader{1, 2, 3};
  m.guid = Guid::FromSequence(2);
  m.entry = MakeEntry(4);
  const std::vector<std::uint8_t> wire = Encode(Message{m});
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(
        Decode(std::span<const std::uint8_t>(wire.data(), len)).has_value())
        << "prefix of length " << len << " decoded";
  }
}

TEST(MessagesTest, DecodeRejectsTrailingGarbage) {
  LookupRequest m;
  m.guid = Guid::FromSequence(3);
  std::vector<std::uint8_t> wire = Encode(Message{m});
  wire.push_back(0x00);
  EXPECT_FALSE(Decode(wire).has_value());
}

TEST(MessagesTest, DecodeRejectsOversizedNaCount) {
  InsertRequest m;
  m.header = MessageHeader{1, 2, 3};
  m.guid = Guid::FromSequence(4);
  m.entry = MakeEntry(1);
  std::vector<std::uint8_t> wire = Encode(Message{m});
  // The NA count byte sits right after header(20) + guid(20) + the
  // logical stamp: version(8) + writer(4).
  const std::size_t count_offset = 20 + 20 + 8 + 4;
  ASSERT_LT(count_offset, wire.size());
  wire[count_offset] = 6;  // > kMaxNas
  EXPECT_FALSE(Decode(wire).has_value());
}

TEST(MessagesTest, DecodeRejectsNonBooleanFlags) {
  LookupResponse m;
  m.header = MessageHeader{1, 2, 3};
  m.guid = Guid::FromSequence(5);
  m.found = false;
  std::vector<std::uint8_t> wire = Encode(Message{m});
  wire.back() = 2;  // found flag must be 0/1
  EXPECT_FALSE(Decode(wire).has_value());
}

TEST(MessagesTest, WireSizeMatchesPaperScale) {
  // A full mapping entry on the wire: close to the paper's 352-bit (44
  // byte) entry estimate plus protocol header.
  InsertRequest m;
  m.guid = Guid::FromSequence(6);
  m.entry = MakeEntry(5);
  const std::size_t size = EncodedSize(Message{m});
  // header 20 + guid 20 + version 8 + writer 4 + count 1 + 5 * 8 +
  // stored addr 4 = 97.
  EXPECT_EQ(size, 97u);
}

}  // namespace
}  // namespace dmap
