// Fault-model behaviour of the wire protocol: delivery-time failure
// semantics, bounded retransmission with backoff, late-reply resolution,
// the availability invariant, and lookup-triggered re-replication.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "bgp/churn.h"
#include "core/dmap_service.h"
#include "fault/fault_plan.h"
#include "fault/retry_policy.h"
#include "proto/network.h"
#include "sim/environment.h"
#include "sim/event_driven.h"
#include "workload/workload.h"

namespace dmap {
namespace {

class NetworkFaultTest : public testing::Test {
 protected:
  NetworkFaultTest()
      : env_(BuildEnvironment(EnvironmentParams::Scaled(300, 61))) {}

  ProtocolNetworkOptions Options(int k = 3) {
    ProtocolNetworkOptions o;
    o.k = k;
    o.local_replica = false;
    return o;
  }

  // The probe order a client at `querier` uses, from a closed-form
  // reference configured like `options`.
  std::vector<std::pair<AsId, double>> ReferencePlan(
      const ProtocolNetworkOptions& options, const Guid& guid,
      NetworkAddress na, AsId querier) {
    DMapOptions ref;
    ref.k = options.k;
    ref.local_replica = options.local_replica;
    DMapService reference(env_.graph, env_.table, ref);
    (void)reference.Insert(guid, na);
    return reference.ProbePlan(guid, querier);
  }

  // Finds a GUID for which wiping the first-probe replica leads to a real
  // "missing" reply and a client-side repair. (A wiped chain owner first
  // hunts its deputies — Section III-D-1 — and when a deputy happens to
  // hold the entry the migration itself refills the store; those GUIDs
  // exercise a different path than the one these tests are about.)
  std::uint64_t FindRepairableSeq(const ProtocolNetworkOptions& options,
                                  AsId querier, NetworkAddress na) {
    for (std::uint64_t seq = 100; seq < 200; ++seq) {
      const Guid g = Guid::FromSequence(seq);
      ProtocolNetwork net(env_.graph, env_.table, options);
      bool inserted = false;
      net.InsertAsync(g, na, [&](const UpdateResult&) { inserted = true; });
      net.simulator().Run();
      if (!inserted) continue;
      const auto plan = ReferencePlan(options, g, na, querier);
      if (plan[0].first == plan[1].first) continue;
      net.node(plan[0].first).store().Clear();
      std::optional<LookupResult> result;
      net.LookupAsync(g, querier,
                      [&](const LookupResult& r) { result = r; });
      net.simulator().Run();
      if (result.has_value() && result->found && result->attempts == 2 &&
          net.repairs_sent() == 1 &&
          net.node(plan[0].first).store().Lookup(g) != nullptr) {
        return seq;
      }
    }
    return 0;  // caller ASSERTs
  }

  std::uint64_t TotalMigrationHunts(ProtocolNetwork& net) {
    std::uint64_t hunts = 0;
    for (AsId as = 0; as < env_.graph.num_nodes(); ++as) {
      hunts += net.node(as).stats().migrations_requested;
    }
    return hunts;
  }

  SimEnvironment env_;
};

// Satellite regression: failure semantics are decided at *delivery* time.
// A failure landing while the probe is in flight swallows it even though
// the destination was alive at send time.
TEST_F(NetworkFaultTest, FailureLandingMidFlightDropsTheRequest) {
  const ProtocolNetworkOptions options = Options();
  ProtocolNetwork net(env_.graph, env_.table, options);
  const Guid g = Guid::FromSequence(1);
  const NetworkAddress na{10, 1};
  bool inserted = false;
  net.InsertAsync(g, na, [&](const UpdateResult&) { inserted = true; });
  net.simulator().Run();
  ASSERT_TRUE(inserted);

  const AsId querier = 123;
  const auto plan = ReferencePlan(options, g, na, querier);
  ASSERT_NE(plan[0].first, plan[1].first);
  const double one_way = net.oracle().OneWayMs(querier, plan[0].first);

  const std::uint64_t dropped_before = net.messages_dropped();
  std::optional<LookupResult> result;
  net.LookupAsync(g, querier, [&](const LookupResult& r) { result = r; });
  // The destination dies after the probe went out but before it arrives.
  net.simulator().Schedule(SimTime::Millis(0.5 * one_way),
                           [&net, as = plan[0].first] { net.FailAs(as); });
  net.simulator().Run();

  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->found);
  EXPECT_EQ(result->attempts, 2);
  const double expected_timeout =
      std::max(options.failure_timeout_ms, 1.5 * plan[0].second);
  EXPECT_NEAR(result->latency_ms, expected_timeout + plan[1].second, 1e-4);
  EXPECT_GT(net.messages_dropped(), dropped_before);
}

// The mirror image: a probe sent while the destination is down is
// *delivered* if the destination recovers before the message lands.
TEST_F(NetworkFaultTest, RecoveryLandingMidFlightDeliversTheRequest) {
  const ProtocolNetworkOptions options = Options();
  ProtocolNetwork net(env_.graph, env_.table, options);
  const Guid g = Guid::FromSequence(2);
  const NetworkAddress na{10, 1};
  bool inserted = false;
  net.InsertAsync(g, na, [&](const UpdateResult&) { inserted = true; });
  net.simulator().Run();
  ASSERT_TRUE(inserted);

  const AsId querier = 123;
  const auto plan = ReferencePlan(options, g, na, querier);
  const double one_way = net.oracle().OneWayMs(querier, plan[0].first);

  net.FailAs(plan[0].first);  // down when the probe is sent...
  std::optional<LookupResult> result;
  net.LookupAsync(g, querier, [&](const LookupResult& r) { result = r; });
  // ...but back up before it can arrive.
  net.simulator().Schedule(
      SimTime::Millis(0.5 * one_way),
      [&net, as = plan[0].first] { net.RecoverAs(as); });
  net.simulator().Run();

  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->found);
  EXPECT_EQ(result->attempts, 1);
  EXPECT_NEAR(result->latency_ms, plan[0].second, 1e-4);
  EXPECT_EQ(net.messages_dropped(), 0u);
}

// The availability invariant, first half: with fewer than K replica hosts
// failed, every lookup resolves — with and without a retry budget.
TEST_F(NetworkFaultTest, FewerThanKFailuresNeverLoseLookups) {
  for (const int retries : {0, 2}) {
    ProtocolNetworkOptions options = Options();
    options.probe_retries = retries;
    ProtocolNetwork net(env_.graph, env_.table, options);
    const Guid g = Guid::FromSequence(3);
    std::optional<UpdateResult> inserted;
    net.InsertAsync(g, NetworkAddress{10, 1},
                    [&](const UpdateResult& r) { inserted = r; });
    net.simulator().Run();
    ASSERT_TRUE(inserted.has_value());

    // K - 1 of the replica hosts go down.
    ASSERT_EQ(inserted->replicas.size(), 3u);
    net.FailAs(inserted->replicas[0]);
    net.FailAs(inserted->replicas[1]);

    for (AsId querier = 3; querier < env_.graph.num_nodes(); querier += 31) {
      std::optional<LookupResult> result;
      net.LookupAsync(g, querier,
                      [&](const LookupResult& r) { result = r; });
      net.simulator().Run();
      ASSERT_TRUE(result.has_value());
      EXPECT_TRUE(result->found)
          << "querier " << querier << " retries " << retries;
    }
  }
}

// The availability invariant, second half: replies that arrive after their
// probe timed out still resolve the lookup. The seed protocol erased the
// pending op at timeout, so a late reply was dropped on the floor and the
// lookup could end "not found" with the answer in flight.
TEST_F(NetworkFaultTest, LateRepliesStillResolveLookups) {
  ProtocolNetworkOptions options = Options();
  ProtocolNetwork net(env_.graph, env_.table, options);

  WorkloadParams params;
  params.num_guids = 40;
  params.seed = 11;
  WorkloadGenerator workload(env_.graph, params);
  for (const InsertOp& op : workload.Inserts()) {
    net.InsertAsync(op.guid, op.na, [](const UpdateResult&) {});
  }
  net.simulator().Run();

  // Heavy jitter, no loss. With jitter < 150ms a probe-0 reply is always
  // in flight (rtt0 + 2 * jitter) strictly before the whole chain can
  // exhaust (>= max(600, 4.5 * rtt0) for K = 3), so every lookup MUST
  // resolve found — many of them via a reply that arrives after its probe
  // already timed out.
  FaultPlan plan;
  plan.jitter_ms = 150.0;
  net.ApplyFaultPlan(plan, /*seed=*/77);

  std::uint64_t found = 0, total = 0;
  std::size_t i = 0;
  for (const LookupOp& op : workload.Lookups(150)) {
    net.simulator().Schedule(
        SimTime::Millis(double(i) * 1.0),
        [&net, &found, &total, guid = op.guid, source = op.source] {
          net.LookupAsync(guid, source, [&](const LookupResult& r) {
            ++total;
            if (r.found) ++found;
          });
        });
    ++i;
  }
  net.simulator().Run();

  EXPECT_EQ(total, 150u);
  EXPECT_EQ(found, total);  // late replies never lose the lookup
  EXPECT_GT(net.late_replies(), 0u);  // and the scenario really occurred
}

// Bounded retransmission recovers dropped probes that single-shot probing
// loses for good.
TEST_F(NetworkFaultTest, RetransmissionRecoversDroppedProbes) {
  const auto run = [&](int retries) {
    ProtocolNetworkOptions options = Options();
    options.probe_retries = retries;
    ProtocolNetwork net(env_.graph, env_.table, options);

    WorkloadParams params;
    params.num_guids = 40;
    params.seed = 12;
    WorkloadGenerator workload(env_.graph, params);
    for (const InsertOp& op : workload.Inserts()) {
      net.InsertAsync(op.guid, op.na, [](const UpdateResult&) {});
    }
    net.simulator().Run();

    FaultPlan plan;
    plan.drop_probability = 0.3;
    net.ApplyFaultPlan(plan, /*seed=*/5);

    std::uint64_t found = 0, total = 0;
    std::size_t i = 0;
    for (const LookupOp& op : workload.Lookups(150)) {
      net.simulator().Schedule(
          SimTime::Millis(double(i) * 2.0),
          [&net, &found, &total, guid = op.guid, source = op.source] {
            net.LookupAsync(guid, source, [&](const LookupResult& r) {
              ++total;
              if (r.found) ++found;
            });
          });
      ++i;
    }
    net.simulator().Run();
    EXPECT_EQ(total, 150u);
    return std::pair<std::uint64_t, std::uint64_t>{found,
                                                   net.retransmissions()};
  };

  const auto [found_single, retrans_single] = run(0);
  const auto [found_retry, retrans_retry] = run(4);
  EXPECT_EQ(retrans_single, 0u);
  EXPECT_GT(retrans_retry, 0u);
  // At 30% loss the single-shot client loses a visible fraction of its
  // lookups; 4 retransmissions per probe recover effectively all of them.
  EXPECT_LT(found_single, 150u);
  EXPECT_EQ(found_retry, 150u);
  EXPECT_GT(found_retry, found_single);
}

// Satellite: closed-form, event-driven, and wire paths agree on what a
// failed replica costs once a retry budget is configured — they all charge
// the fault/retry_policy.h geometry.
TEST_F(NetworkFaultTest, RetryCostAgreesAcrossAllThreePaths) {
  const Guid g = Guid::FromSequence(4);
  const NetworkAddress na{10, 1};
  const AsId querier = 99;
  const auto probe_order = ReferencePlan(Options(), g, na, querier);
  ASSERT_NE(probe_order[0].first, probe_order[1].first);

  // Pick the base timeout above the adaptive floor (1.5 * rtt) of the dead
  // replica, so all three paths charge the pure policy geometry.
  const double base = std::max(400.0, 1.5 * probe_order[0].second + 10.0);

  DMapOptions service_options;
  service_options.k = 3;
  service_options.local_replica = false;
  service_options.failure_timeout_ms = base;
  service_options.probe_retries = 2;
  service_options.retry_backoff = 3.0;
  DMapService service(env_.graph, env_.table, service_options);
  (void)service.Insert(g, na);

  // One FailureView, shared by every path.
  FailureView view;
  view.Fail(probe_order[0].first);
  service.SetFailureView(view);

  const LookupResult expected = service.Lookup(g, querier);
  ASSERT_TRUE(expected.found);
  EXPECT_EQ(expected.attempts, 2);
  EXPECT_NEAR(expected.latency_ms,
              TotalTimeoutCostMs(base, 2, 3.0) + probe_order[1].second,
              1e-9);

  // Event-driven path.
  Simulator sim;
  EventDrivenLookup executor(sim, service);
  std::optional<LookupResult> event_result;
  executor.LookupAsync(g, querier, SimTime::Zero(),
                       [&](const LookupResult& r) { event_result = r; });
  sim.Run();
  ASSERT_TRUE(event_result.has_value());
  EXPECT_NEAR(event_result->latency_ms, expected.latency_ms, 1e-9);
  EXPECT_EQ(event_result->attempts, expected.attempts);

  // Wire path, same view.
  ProtocolNetworkOptions net_options = Options();
  net_options.failure_timeout_ms = base;
  net_options.probe_retries = 2;
  net_options.retry_backoff = 3.0;
  ProtocolNetwork net(env_.graph, env_.table, net_options);
  bool inserted = false;
  net.InsertAsync(g, na, [&](const UpdateResult&) { inserted = true; });
  net.simulator().Run();
  ASSERT_TRUE(inserted);
  net.SetFailureView(view);

  std::optional<LookupResult> wire_result;
  net.LookupAsync(g, querier,
                  [&](const LookupResult& r) { wire_result = r; });
  net.simulator().Run();
  ASSERT_TRUE(wire_result.has_value());
  EXPECT_TRUE(wire_result->found);
  EXPECT_NEAR(wire_result->latency_ms, expected.latency_ms, 1e-4);
  EXPECT_EQ(wire_result->attempts, expected.attempts);
  EXPECT_EQ(net.retransmissions(), 2u);  // 2 retries on the dead replica
}

// A replica that crashed, lost its store, and recovered answers "missing";
// the lookup that finds the mapping elsewhere re-replicates it there, and
// the next lookup is back to first-probe cost.
TEST_F(NetworkFaultTest, RecoveredEmptyReplicaIsRepairedByLookup) {
  const ProtocolNetworkOptions options = Options();
  const NetworkAddress na{10, 1};
  const AsId querier = 123;
  const std::uint64_t seq = FindRepairableSeq(options, querier, na);
  ASSERT_NE(seq, 0u) << "no repairable GUID found";

  ProtocolNetwork net(env_.graph, env_.table, options);
  const Guid g = Guid::FromSequence(seq);
  std::optional<UpdateResult> inserted;
  net.InsertAsync(g, na, [&](const UpdateResult& r) { inserted = r; });
  net.simulator().Run();
  ASSERT_TRUE(inserted.has_value());

  const auto plan = ReferencePlan(options, g, na, querier);
  const AsId crashed = plan[0].first;

  // Crash-with-wipe, then immediate recovery: the host is live but empty.
  net.node(crashed).store().Clear();
  ASSERT_EQ(net.node(crashed).store().Lookup(g), nullptr);

  std::optional<LookupResult> first;
  net.LookupAsync(g, querier, [&](const LookupResult& r) { first = r; });
  net.simulator().Run();
  ASSERT_TRUE(first.has_value());
  EXPECT_TRUE(first->found);
  EXPECT_EQ(first->attempts, 2);  // miss at the empty host, hit at the next
  EXPECT_EQ(net.repairs_sent(), 1u);

  // The repair re-inserted the entry (same version) at the empty host.
  const MappingEntry* repaired = net.node(crashed).store().Lookup(g);
  ASSERT_NE(repaired, nullptr);
  EXPECT_EQ(repaired->version, inserted->version);

  std::optional<LookupResult> second;
  net.LookupAsync(g, querier, [&](const LookupResult& r) { second = r; });
  net.simulator().Run();
  ASSERT_TRUE(second.has_value());
  EXPECT_TRUE(second->found);
  EXPECT_EQ(second->attempts, 1);  // back to normal cost
  EXPECT_NEAR(second->latency_ms, plan[0].second, 1e-4);
}

TEST_F(NetworkFaultTest, RepairCanBeDisabled) {
  ProtocolNetworkOptions options = Options();
  const NetworkAddress na{10, 1};
  const AsId querier = 123;
  const std::uint64_t seq = FindRepairableSeq(options, querier, na);
  ASSERT_NE(seq, 0u) << "no repairable GUID found";

  options.repair_on_lookup = false;
  ProtocolNetwork net(env_.graph, env_.table, options);
  const Guid g = Guid::FromSequence(seq);
  bool inserted = false;
  net.InsertAsync(g, na, [&](const UpdateResult&) { inserted = true; });
  net.simulator().Run();
  ASSERT_TRUE(inserted);

  const auto plan = ReferencePlan(options, g, na, querier);
  net.node(plan[0].first).store().Clear();

  std::optional<LookupResult> result;
  net.LookupAsync(g, querier, [&](const LookupResult& r) { result = r; });
  net.simulator().Run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->found);  // the fall-through still resolves it
  EXPECT_EQ(net.repairs_sent(), 0u);
  // With repair off, the empty replica stays empty and keeps costing a
  // wasted probe.
  EXPECT_EQ(net.node(plan[0].first).store().Lookup(g), nullptr);
  std::optional<LookupResult> second;
  net.LookupAsync(g, querier, [&](const LookupResult& r) { second = r; });
  net.simulator().Run();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->attempts, 2);
}

// The whole tentpole arc through the declarative plan: a scheduled crash
// wipes the store, the AS recovers empty, and the first lookup that finds
// the mapping elsewhere repairs it.
TEST_F(NetworkFaultTest, FaultPlanCrashWipeRecoverRepairEndToEnd) {
  const ProtocolNetworkOptions options = Options();
  const NetworkAddress na{10, 1};
  const AsId querier = 123;
  const std::uint64_t seq = FindRepairableSeq(options, querier, na);
  ASSERT_NE(seq, 0u) << "no repairable GUID found";

  ProtocolNetwork net(env_.graph, env_.table, options);
  const Guid g = Guid::FromSequence(seq);
  bool inserted = false;
  net.InsertAsync(g, na, [&](const UpdateResult&) { inserted = true; });
  net.simulator().Run();
  ASSERT_TRUE(inserted);

  const auto plan = ReferencePlan(options, g, na, querier);
  const AsId crashed = plan[0].first;
  ASSERT_NE(crashed, plan[1].first);
  const double now = net.simulator().Now().millis();

  FaultPlan fault_plan;
  CrashWindow window;
  window.as = crashed;
  window.down_at = SimTime::Millis(now + 10.0);
  window.up_at = SimTime::Millis(now + 50.0);
  fault_plan.crashes.push_back(window);
  net.ApplyFaultPlan(fault_plan, /*seed=*/3);

  // Look up after the recovery: the host is live again but empty.
  std::optional<LookupResult> result;
  net.simulator().Schedule(SimTime::Millis(60.0), [&] {
    net.LookupAsync(g, querier, [&](const LookupResult& r) { result = r; });
  });
  net.simulator().Run();

  EXPECT_EQ(net.store_wipes(), 1u);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->found);
  EXPECT_EQ(result->attempts, 2);
  EXPECT_EQ(net.repairs_sent(), 1u);
  EXPECT_NE(net.node(crashed).store().Lookup(g), nullptr);
}

// Satellite: the unified insert completion also covers the all-acks-lost
// case — every slot resolves via its stand-in timeout and the operation
// completes at the slowest one.
TEST_F(NetworkFaultTest, InsertCompletesWhenEveryMessageIsLost) {
  const ProtocolNetworkOptions options = Options();
  ProtocolNetwork net(env_.graph, env_.table, options);
  FaultPlan plan;
  plan.drop_probability = 1.0;  // nothing is ever delivered
  net.ApplyFaultPlan(plan, /*seed=*/1);

  const NetworkAddress na{10, 1};
  std::optional<UpdateResult> result;
  net.InsertAsync(Guid::FromSequence(8), na,
                  [&](const UpdateResult& r) { result = r; });
  net.simulator().Run();
  ASSERT_TRUE(result.has_value());

  double expected = 0.0;
  for (const AsId host : result->replicas) {
    const double rtt = 2.0 * net.oracle().OneWayMs(na.as, host);
    expected = std::max(expected,
                        std::max(options.failure_timeout_ms, 1.5 * rtt));
  }
  EXPECT_NEAR(result->latency_ms, expected, 1e-9);
  EXPECT_EQ(net.messages_dropped(), 3u);  // the three replica writes
}

// Duplicated traffic must be invisible to results: duplicate acks and
// responses are absorbed, timings match an unfaulted run.
TEST_F(NetworkFaultTest, DuplicatedTrafficIsIdempotent) {
  const ProtocolNetworkOptions options = Options();
  const Guid g = Guid::FromSequence(9);
  const NetworkAddress na{10, 1};
  const AsId querier = 200;

  const auto run = [&](bool duplicate) {
    ProtocolNetwork net(env_.graph, env_.table, options);
    if (duplicate) {
      FaultPlan plan;
      plan.duplicate_probability = 1.0;  // every message arrives twice
      net.ApplyFaultPlan(plan, /*seed=*/2);
    }
    std::optional<UpdateResult> insert_result;
    net.InsertAsync(g, na,
                    [&](const UpdateResult& r) { insert_result = r; });
    net.simulator().Run();
    std::optional<LookupResult> lookup_result;
    net.LookupAsync(g, querier,
                    [&](const LookupResult& r) { lookup_result = r; });
    net.simulator().Run();
    EXPECT_TRUE(insert_result.has_value());
    EXPECT_TRUE(lookup_result.has_value());
    if (duplicate) {
      EXPECT_GT(net.duplicates_delivered(), 0u);
      EXPECT_EQ(net.messages_dropped(), 0u);
    }
    return std::pair<UpdateResult, LookupResult>{*insert_result,
                                                 *lookup_result};
  };

  const auto [plain_insert, plain_lookup] = run(false);
  const auto [dup_insert, dup_lookup] = run(true);
  EXPECT_NEAR(dup_insert.latency_ms, plain_insert.latency_ms, 1e-9);
  EXPECT_EQ(dup_insert.replicas, plain_insert.replicas);
  EXPECT_TRUE(dup_lookup.found);
  EXPECT_NEAR(dup_lookup.latency_ms, plain_lookup.latency_ms, 1e-9);
  EXPECT_EQ(dup_lookup.attempts, plain_lookup.attempts);
  EXPECT_EQ(dup_lookup.nas, plain_lookup.nas);
}

// Satellite: deputy migration racing a concurrent failure. A churn orphan
// whose deputies (the ASs still holding the mapping) are down cannot be
// fetched — the node's migration stalls, and the *client's* timeout is
// what keeps the lookup live: it falls through and still completes. After
// the deputies recover, the same lookup resolves.
TEST_F(NetworkFaultTest, DeputyMigrationUnderConcurrentFailure) {
  ProtocolNetworkOptions options = Options(5);
  ProtocolNetwork net(env_.graph, env_.table, options);

  WorkloadParams params;
  params.num_guids = 120;
  params.seed = 9;
  WorkloadGenerator workload(env_.graph, params);
  for (const InsertOp& op : workload.Inserts()) {
    bool done = false;
    net.InsertAsync(op.guid, op.na, [&](const UpdateResult&) { done = true; });
    net.simulator().Run();
    ASSERT_TRUE(done);
  }

  Rng rng(13);
  ChurnParams churn;
  churn.announce_fraction = 0.05;  // new prefixes: orphan scenario
  churn.num_ases = env_.graph.num_nodes();
  ApplyChurn(env_.table, SampleChurn(env_.table, churn, rng));

  // Find a GUID whose post-churn probe plan mixes holders with an orphaned
  // AS that will hunt its deputies when probed (non-empty candidate list).
  // With every holder failed, the client's fall-through reaches the orphan
  // and its migration hunt races the dead deputies.
  DMapOptions ref_options;
  ref_options.k = 5;
  ref_options.local_replica = false;
  DMapService reference(env_.graph, env_.table, ref_options);
  const AsId querier = 77;
  Guid victim;
  bool found_scenario = false;
  for (std::uint64_t i = 0; i < params.num_guids && !found_scenario; ++i) {
    const Guid guid = workload.GuidAt(i);
    bool has_holder = false, has_hunter = false;
    for (const auto& [as, rtt] : reference.ProbePlan(guid, querier)) {
      if (net.node(as).store().Lookup(guid) != nullptr) {
        has_holder = true;
      } else if (!net.node(as).DeputyCandidates(guid).empty()) {
        has_hunter = true;
      }
    }
    if (has_holder && has_hunter) {
      victim = guid;
      found_scenario = true;
    }
  }
  ASSERT_TRUE(found_scenario) << "churn produced no orphaned probe target";

  std::vector<AsId> holders;
  for (AsId as = 0; as < env_.graph.num_nodes(); ++as) {
    if (net.node(as).store().Lookup(victim) != nullptr) holders.push_back(as);
  }
  ASSERT_FALSE(holders.empty());

  // Take down every AS still holding the mapping: any migration hunt dies
  // with its deputy mid-exchange.
  const std::uint64_t hunts_before = TotalMigrationHunts(net);
  for (const AsId holder : holders) net.FailAs(holder);

  std::optional<LookupResult> during;
  net.LookupAsync(victim, querier,
                  [&](const LookupResult& r) { during = r; });
  net.simulator().Run();
  // The client completes regardless: a stalled migration never hangs the
  // lookup, the client-side timeouts drive it to a terminal result.
  ASSERT_TRUE(during.has_value());

  // Deputies recover: the mapping is reachable again.
  for (const AsId holder : holders) net.RecoverAs(holder);
  std::optional<LookupResult> after;
  net.LookupAsync(victim, querier,
                  [&](const LookupResult& r) { after = r; });
  net.simulator().Run();
  ASSERT_TRUE(after.has_value());
  EXPECT_TRUE(after->found);

  // And the wider stream still terminates under the same conditions: no
  // lookup may hang on a stalled migration.
  for (const AsId holder : holders) net.FailAs(holder);
  int completed = 0;
  for (const LookupOp& op : workload.Lookups(50)) {
    std::optional<LookupResult> r;
    net.LookupAsync(op.guid, op.source,
                    [&](const LookupResult& result) { r = result; });
    net.simulator().Run();
    ASSERT_TRUE(r.has_value());
    ++completed;
  }
  EXPECT_EQ(completed, 50);
  // Across the run, migrations really were racing the failed deputies.
  EXPECT_GT(TotalMigrationHunts(net), hunts_before);
}

}  // namespace
}  // namespace dmap
