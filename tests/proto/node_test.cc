#include "proto/node.h"

#include <gtest/gtest.h>

namespace dmap {
namespace {

Cidr C(const std::string& text) {
  Cidr c;
  EXPECT_TRUE(Cidr::Parse(text, &c)) << text;
  return c;
}

class DMapNodeTest : public testing::Test {
 protected:
  DMapNodeTest() : hashes_(1, 7) {
    table_.Announce(C("0.0.0.0/1"), 1);
    table_.Announce(C("128.0.0.0/1"), 2);
  }

  InsertRequest MakeInsert(const Guid& guid, AsId src, AsId dst,
                           std::uint64_t version = 1) {
    InsertRequest m;
    m.header = MessageHeader{777, src, dst};
    m.guid = guid;
    m.entry.version = version;
    m.entry.nas.Add(NetworkAddress{src, 1});
    return m;
  }

  LookupRequest MakeLookup(const Guid& guid, AsId src, AsId dst) {
    LookupRequest m;
    m.header = MessageHeader{888, src, dst};
    m.guid = guid;
    return m;
  }

  PrefixTable table_;
  GuidHashFamily hashes_;
};

TEST_F(DMapNodeTest, InsertThenLookupFound) {
  DMapNode node(1, table_, hashes_);
  const Guid g = Guid::FromSequence(1);

  std::vector<Message> out;
  node.HandleMessage(MakeInsert(g, 5, 1), &out);
  ASSERT_EQ(out.size(), 1u);
  const auto* ack = std::get_if<InsertAck>(&out[0]);
  ASSERT_NE(ack, nullptr);
  EXPECT_TRUE(ack->applied);
  EXPECT_EQ(ack->header.dst, 5u);        // back to the requester
  EXPECT_EQ(ack->header.request_id, 777u);  // correlates with the request
  EXPECT_EQ(node.store().size(), 1u);

  out.clear();
  node.HandleMessage(MakeLookup(g, 9, 1), &out);
  ASSERT_EQ(out.size(), 1u);
  const auto* response = std::get_if<LookupResponse>(&out[0]);
  ASSERT_NE(response, nullptr);
  EXPECT_TRUE(response->found);
  EXPECT_TRUE(response->entry.nas.AttachedTo(5));
  EXPECT_EQ(response->header.dst, 9u);
  EXPECT_EQ(node.stats().lookups_served, 1u);
}

TEST_F(DMapNodeTest, StaleInsertRejected) {
  DMapNode node(1, table_, hashes_);
  const Guid g = Guid::FromSequence(2);
  std::vector<Message> out;
  node.HandleMessage(MakeInsert(g, 5, 1, /*version=*/3), &out);
  out.clear();
  node.HandleMessage(MakeInsert(g, 6, 1, /*version=*/2), &out);
  const auto* ack = std::get_if<InsertAck>(&out[0]);
  ASSERT_NE(ack, nullptr);
  EXPECT_FALSE(ack->applied);
  EXPECT_EQ(node.stats().inserts_rejected_stale, 1u);
  EXPECT_TRUE(node.store().Lookup(g)->nas.AttachedTo(5));
}

TEST_F(DMapNodeTest, LookupMissTriggersMigrationHunt) {
  // The GUID's hash chain resolves to some owner; a lookup at that owner
  // for an absent mapping must ask the deputy (chain continuation) before
  // answering.
  const Guid g = Guid::FromSequence(3);
  const Ipv4Address first = hashes_.Hash(g, 0);
  const AsId owner = table_.Lookup(first)->owner;
  DMapNode node(owner, table_, hashes_);

  std::vector<Message> out;
  node.HandleMessage(MakeLookup(g, 9, owner), &out);
  ASSERT_EQ(out.size(), 1u);
  const auto* migrate = std::get_if<MigrateRequest>(&out[0]);
  ASSERT_NE(migrate, nullptr);
  EXPECT_EQ(migrate->guid, g);
  EXPECT_NE(migrate->header.dst, owner);
  EXPECT_EQ(node.stats().migrations_requested, 1u);

  // The deputy answers with the mapping: the node stores it and replies to
  // the waiting querier.
  MigrateResponse deputy_reply;
  deputy_reply.header =
      MessageHeader{migrate->header.request_id, migrate->header.dst, owner};
  deputy_reply.guid = g;
  deputy_reply.found = true;
  deputy_reply.entry.version = 1;
  deputy_reply.entry.nas.Add(NetworkAddress{42, 1});

  out.clear();
  node.HandleMessage(Message{deputy_reply}, &out);
  ASSERT_EQ(out.size(), 1u);
  const auto* response = std::get_if<LookupResponse>(&out[0]);
  ASSERT_NE(response, nullptr);
  EXPECT_TRUE(response->found);
  EXPECT_EQ(response->header.dst, 9u);
  EXPECT_EQ(response->header.request_id, 888u);
  EXPECT_NE(node.store().Lookup(g), nullptr);  // migrated in
  EXPECT_EQ(node.stats().migrations_received, 1u);
}

TEST_F(DMapNodeTest, ConcurrentLookupsShareOneMigration) {
  const Guid g = Guid::FromSequence(4);
  const AsId owner = table_.Lookup(hashes_.Hash(g, 0))->owner;
  DMapNode node(owner, table_, hashes_);

  std::vector<Message> out;
  node.HandleMessage(MakeLookup(g, 9, owner), &out);
  ASSERT_EQ(out.size(), 1u);
  const auto migrate = std::get<MigrateRequest>(out[0]);

  // A second lookup while the migration is in flight queues silently.
  out.clear();
  node.HandleMessage(MakeLookup(g, 10, owner), &out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(node.stats().migrations_requested, 1u);

  // One deputy answer satisfies both queriers.
  MigrateResponse reply;
  reply.header =
      MessageHeader{migrate.header.request_id, migrate.header.dst, owner};
  reply.guid = g;
  reply.found = true;
  reply.entry.version = 1;
  reply.entry.nas.Add(NetworkAddress{42, 1});
  out.clear();
  node.HandleMessage(Message{reply}, &out);
  ASSERT_EQ(out.size(), 2u);
  for (const Message& m : out) {
    const auto* response = std::get_if<LookupResponse>(&m);
    ASSERT_NE(response, nullptr);
    EXPECT_TRUE(response->found);
  }
}

TEST_F(DMapNodeTest, MigrationFallsThroughCandidatesThenGivesUp) {
  const Guid g = Guid::FromSequence(5);
  const AsId owner = table_.Lookup(hashes_.Hash(g, 0))->owner;
  DMapNode node(owner, table_, hashes_);

  std::vector<Message> out;
  node.HandleMessage(MakeLookup(g, 9, owner), &out);
  // Keep answering "not found" until the node gives up.
  int migrations = 0;
  while (!out.empty()) {
    const auto* migrate = std::get_if<MigrateRequest>(&out[0]);
    if (migrate == nullptr) break;
    ++migrations;
    ASSERT_LT(migrations, 10) << "unbounded migration hunt";
    MigrateResponse reply;
    reply.header =
        MessageHeader{migrate->header.request_id, migrate->header.dst, owner};
    reply.guid = g;
    reply.found = false;
    out.clear();
    node.HandleMessage(Message{reply}, &out);
  }
  ASSERT_EQ(out.size(), 1u);
  const auto* response = std::get_if<LookupResponse>(&out[0]);
  ASSERT_NE(response, nullptr);
  EXPECT_FALSE(response->found);
  EXPECT_EQ(node.stats().lookups_missing, 1u);
}

TEST_F(DMapNodeTest, MigrateRequestHandsOverAndDeletes) {
  DMapNode node(2, table_, hashes_);
  const Guid g = Guid::FromSequence(6);
  std::vector<Message> out;
  node.HandleMessage(MakeInsert(g, 5, 2), &out);
  out.clear();

  MigrateRequest request;
  request.header = MessageHeader{55, 1, 2};
  request.guid = g;
  node.HandleMessage(Message{request}, &out);
  ASSERT_EQ(out.size(), 1u);
  const auto* response = std::get_if<MigrateResponse>(&out[0]);
  ASSERT_NE(response, nullptr);
  EXPECT_TRUE(response->found);
  EXPECT_TRUE(response->entry.nas.AttachedTo(5));
  // "Relocates" rather than copies.
  EXPECT_EQ(node.store().Lookup(g), nullptr);
  EXPECT_EQ(node.stats().migrations_served, 1u);
}

TEST_F(DMapNodeTest, MigrateRequestForUnknownGuidSaysNotFound) {
  DMapNode node(2, table_, hashes_);
  MigrateRequest request;
  request.header = MessageHeader{55, 1, 2};
  request.guid = Guid::FromSequence(7);
  std::vector<Message> out;
  node.HandleMessage(Message{request}, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FALSE(std::get<MigrateResponse>(out[0]).found);
}

// The read-repair / deputy-handoff interleaving: a newer write (client
// update, read-repair, anti-entropy push) lands while the migration is in
// flight. The older migrated copy must not shadow it — the waiting
// queriers are answered from the store's post-upsert entry.
TEST_F(DMapNodeTest, MigrateResponseNeverShadowsNewerRacedInWrite) {
  const Guid g = Guid::FromSequence(9);
  const AsId owner = table_.Lookup(hashes_.Hash(g, 0))->owner;
  DMapNode node(owner, table_, hashes_);

  std::vector<Message> out;
  node.HandleMessage(MakeLookup(g, 9, owner), &out);
  ASSERT_EQ(out.size(), 1u);
  const auto migrate = std::get<MigrateRequest>(out[0]);

  // While the handoff is in flight, a version-5 write lands here.
  out.clear();
  node.HandleMessage(MakeInsert(g, 5, owner, /*version=*/5), &out);

  // The deputy then answers with the old version-1 copy.
  MigrateResponse reply;
  reply.header =
      MessageHeader{migrate.header.request_id, migrate.header.dst, owner};
  reply.guid = g;
  reply.found = true;
  reply.entry.version = 1;
  reply.entry.nas.Add(NetworkAddress{42, 1});
  out.clear();
  node.HandleMessage(Message{reply}, &out);
  ASSERT_EQ(out.size(), 1u);
  const auto* response = std::get_if<LookupResponse>(&out[0]);
  ASSERT_NE(response, nullptr);
  EXPECT_TRUE(response->found);
  // The querier sees the newer write, not the stale migrated copy...
  EXPECT_EQ(response->entry.version, 5u);
  EXPECT_TRUE(response->entry.nas.AttachedTo(5));
  // ...and the store keeps it too.
  EXPECT_EQ(node.store().Lookup(g)->version, 5u);

  // A duplicated delivery of the same MigrateResponse is absorbed: the
  // pending state is gone and the stamp gate rejects the stale re-upsert.
  out.clear();
  node.HandleMessage(Message{reply}, &out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(node.store().Lookup(g)->version, 5u);
}

// The give-up side of the same race: the deputy has nothing, but the write
// that raced in means "GUID missing" would be wrong — answer from the
// store instead.
TEST_F(DMapNodeTest, MigrateGiveUpPrefersRacedInWrite) {
  const Guid g = Guid::FromSequence(10);
  const AsId owner = table_.Lookup(hashes_.Hash(g, 0))->owner;
  DMapNode node(owner, table_, hashes_);

  std::vector<Message> out;
  node.HandleMessage(MakeLookup(g, 9, owner), &out);
  ASSERT_EQ(out.size(), 1u);
  const auto migrate = std::get<MigrateRequest>(out[0]);

  out.clear();
  node.HandleMessage(MakeInsert(g, 5, owner, /*version=*/3), &out);

  MigrateResponse reply;
  reply.header =
      MessageHeader{migrate.header.request_id, migrate.header.dst, owner};
  reply.guid = g;
  reply.found = false;
  out.clear();
  node.HandleMessage(Message{reply}, &out);
  ASSERT_EQ(out.size(), 1u);
  const auto* response = std::get_if<LookupResponse>(&out[0]);
  ASSERT_NE(response, nullptr);
  EXPECT_TRUE(response->found);
  EXPECT_EQ(response->entry.version, 3u);
  EXPECT_EQ(node.stats().lookups_missing, 0u);
}

TEST_F(DMapNodeTest, StaleMigrateResponseIgnored) {
  DMapNode node(1, table_, hashes_);
  MigrateResponse reply;
  reply.header = MessageHeader{1234, 2, 1};
  reply.guid = Guid::FromSequence(8);
  reply.found = true;
  reply.entry.version = 1;
  reply.entry.nas.Add(NetworkAddress{42, 1});
  std::vector<Message> out;
  node.HandleMessage(Message{reply}, &out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(node.store().size(), 0u);
}

}  // namespace
}  // namespace dmap
