#include "proto/network.h"

#include <gtest/gtest.h>

#include <optional>

#include "bgp/churn.h"
#include "sim/environment.h"
#include "workload/workload.h"

namespace dmap {
namespace {

class ProtocolNetworkTest : public testing::Test {
 protected:
  ProtocolNetworkTest()
      : env_(BuildEnvironment(EnvironmentParams::Scaled(300, 61))) {}

  ProtocolNetworkOptions Options(int k = 3) {
    ProtocolNetworkOptions o;
    o.k = k;
    return o;
  }

  SimEnvironment env_;
};

TEST_F(ProtocolNetworkTest, InsertThenLookupOverTheWire) {
  ProtocolNetwork net(env_.graph, env_.table, Options());
  const Guid g = Guid::FromSequence(1);

  std::optional<UpdateResult> insert_result;
  net.InsertAsync(g, NetworkAddress{10, 1},
                  [&](const UpdateResult& r) { insert_result = r; });
  net.simulator().Run();
  ASSERT_TRUE(insert_result.has_value());
  EXPECT_EQ(insert_result->replicas.size(), 3u);
  EXPECT_GT(insert_result->latency_ms, 0.0);

  std::optional<LookupResult> lookup_result;
  net.LookupAsync(g, 200,
                  [&](const LookupResult& r) { lookup_result = r; });
  net.simulator().Run();
  ASSERT_TRUE(lookup_result.has_value());
  EXPECT_TRUE(lookup_result->found);
  EXPECT_TRUE(lookup_result->nas.AttachedTo(10));
  EXPECT_GT(net.messages_sent(), 0u);
  EXPECT_GT(net.bytes_sent(), 0u);
}

TEST_F(ProtocolNetworkTest, AgreesWithClosedFormService) {
  // The wire-protocol execution must produce the same latencies as the
  // closed-form DMapService for registered GUIDs with no failures/churn.
  DMapOptions service_options;
  service_options.k = 3;
  service_options.measure_update_latency = true;
  DMapService service(env_.graph, env_.table, service_options);
  ProtocolNetwork net(env_.graph, env_.table, Options());

  WorkloadParams params;
  params.num_guids = 100;
  params.seed = 5;
  WorkloadGenerator workload(env_.graph, params);
  for (const InsertOp& op : workload.Inserts()) {
    const UpdateResult expected = service.Insert(op.guid, op.na);
    std::optional<UpdateResult> got;
    net.InsertAsync(op.guid, op.na,
                    [&](const UpdateResult& r) { got = r; });
    net.simulator().Run();
    ASSERT_TRUE(got.has_value());
    // The protocol path sums each direction's one-way latency from its own
    // (float) Dijkstra run; forward/backward accumulation order differs by
    // ~1e-6 ms, so equality is asserted to that precision.
    EXPECT_NEAR(got->latency_ms, expected.latency_ms, 1e-4);
    EXPECT_EQ(got->replicas, expected.replicas);
  }

  for (const LookupOp& op : workload.Lookups(300)) {
    const LookupResult expected = service.Lookup(op.guid, op.source);
    std::optional<LookupResult> got;
    net.LookupAsync(op.guid, op.source,
                    [&](const LookupResult& r) { got = r; });
    net.simulator().Run();
    ASSERT_TRUE(got.has_value());
    ASSERT_TRUE(got->found);
    EXPECT_NEAR(got->latency_ms, expected.latency_ms, 1e-4);
    EXPECT_EQ(got->served_locally, expected.served_locally);
    EXPECT_EQ(got->nas, expected.nas);
  }
}

TEST_F(ProtocolNetworkTest, FailedReplicaFallsThroughAfterTimeout) {
  ProtocolNetworkOptions options = Options();
  options.local_replica = false;
  ProtocolNetwork net(env_.graph, env_.table, options);
  const Guid g = Guid::FromSequence(2);

  std::optional<UpdateResult> insert_result;
  net.InsertAsync(g, NetworkAddress{10, 1},
                  [&](const UpdateResult& r) { insert_result = r; });
  net.simulator().Run();
  ASSERT_TRUE(insert_result.has_value());

  // Kill the replica the querier would pick first.
  // (All replicas are distinct ASs with overwhelming probability.)
  const AsId querier = 123;
  // Determine the best replica by asking a reference service.
  DMapOptions ref_options;
  ref_options.k = 3;
  ref_options.local_replica = false;
  DMapService reference(env_.graph, env_.table, ref_options);
  (void)reference.Insert(g, NetworkAddress{10, 1});
  const auto plan = reference.ProbePlan(g, querier);
  net.FailAs(plan[0].first);

  std::optional<LookupResult> lookup_result;
  net.LookupAsync(g, querier,
                  [&](const LookupResult& r) { lookup_result = r; });
  net.simulator().Run();
  ASSERT_TRUE(lookup_result.has_value());
  if (plan[1].first != plan[0].first) {
    EXPECT_TRUE(lookup_result->found);
    EXPECT_EQ(lookup_result->attempts, 2);
    // Cost = adaptive timeout for the dead replica + second replica RTT.
    const double expected_timeout =
        std::max(options.failure_timeout_ms, 1.5 * plan[0].second);
    EXPECT_NEAR(lookup_result->latency_ms,
                expected_timeout + plan[1].second, 1e-4);
  }
  EXPECT_GT(net.messages_dropped(), 0u);

  // Recovery: the replica answers again.
  net.RecoverAs(plan[0].first);
  std::optional<LookupResult> after;
  net.LookupAsync(g, querier, [&](const LookupResult& r) { after = r; });
  net.simulator().Run();
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->attempts, 1);
}

TEST_F(ProtocolNetworkTest, AllReplicasDownMeansNotFound) {
  ProtocolNetworkOptions options = Options();
  options.local_replica = false;
  ProtocolNetwork net(env_.graph, env_.table, options);
  const Guid g = Guid::FromSequence(3);
  std::optional<UpdateResult> insert_result;
  net.InsertAsync(g, NetworkAddress{10, 1},
                  [&](const UpdateResult& r) { insert_result = r; });
  net.simulator().Run();
  for (const AsId host : insert_result->replicas) net.FailAs(host);

  std::optional<LookupResult> result;
  net.LookupAsync(g, 77, [&](const LookupResult& r) { result = r; });
  net.simulator().Run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->found);
  EXPECT_EQ(result->attempts, 3);
}

TEST_F(ProtocolNetworkTest, LocalReplicaAnswersWhenGlobalsAreDown) {
  ProtocolNetwork net(env_.graph, env_.table, Options());
  const Guid g = Guid::FromSequence(4);
  std::optional<UpdateResult> insert_result;
  net.InsertAsync(g, NetworkAddress{42, 1},
                  [&](const UpdateResult& r) { insert_result = r; });
  net.simulator().Run();
  for (const AsId host : insert_result->replicas) {
    if (host != 42) net.FailAs(host);
  }

  std::optional<LookupResult> result;
  net.LookupAsync(g, 42, [&](const LookupResult& r) { result = r; });
  net.simulator().Run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->found);
  EXPECT_TRUE(result->served_locally);
  EXPECT_NEAR(result->latency_ms, 2.0 * env_.graph.IntraLatencyMs(42),
              1e-9);
}

TEST_F(ProtocolNetworkTest, MigrationRepairsChurnOrphansOnFirstQuery) {
  // End-to-end Section III-D-1: place mappings, churn the table so some
  // lookups hash to newly-announcing ASs, and verify the migration
  // protocol recovers the orphaned mapping transparently.
  ProtocolNetworkOptions options = Options(5);
  options.local_replica = false;
  // The shared table is mutated after placement, so nodes see the new
  // announcements — exactly the scenario the migration handles.
  ProtocolNetwork net(env_.graph, env_.table, options);

  WorkloadParams params;
  params.num_guids = 200;
  params.seed = 9;
  WorkloadGenerator workload(env_.graph, params);
  for (const InsertOp& op : workload.Inserts()) {
    bool done = false;
    net.InsertAsync(op.guid, op.na, [&](const UpdateResult&) { done = true; });
    net.simulator().Run();
    ASSERT_TRUE(done);
  }

  Rng rng(13);
  ChurnParams churn;
  churn.announce_fraction = 0.05;  // new prefixes only: orphan scenario
  churn.num_ases = env_.graph.num_nodes();
  ApplyChurn(env_.table, SampleChurn(env_.table, churn, rng));

  int found = 0, total = 0;
  for (const LookupOp& op : workload.Lookups(400)) {
    std::optional<LookupResult> result;
    net.LookupAsync(op.guid, op.source,
                    [&](const LookupResult& r) { result = r; });
    net.simulator().Run();
    ASSERT_TRUE(result.has_value());
    ++total;
    if (result->found) ++found;
  }
  // Every registered GUID must still resolve (replicas whose placement is
  // unaffected answer directly; affected ones are migrated on demand).
  EXPECT_EQ(found, total);
}

TEST_F(ProtocolNetworkTest, WithdrawalHandsMappingsToDeputies) {
  // Section III-D-1 withdrawal side: pick an announced prefix that hosts
  // mappings, run the proactive handoff, and verify every affected GUID
  // still resolves first-try with no migration hunting.
  ProtocolNetworkOptions options = Options(3);
  options.local_replica = false;
  ProtocolNetwork net(env_.graph, env_.table, options);

  WorkloadParams params;
  params.num_guids = 300;
  params.seed = 21;
  WorkloadGenerator workload(env_.graph, params);
  for (const InsertOp& op : workload.Inserts()) {
    bool done = false;
    net.InsertAsync(op.guid, op.na, [&](const UpdateResult&) { done = true; });
    net.simulator().Run();
    ASSERT_TRUE(done);
  }

  // Find a prefix that actually stores mappings at its owner.
  Cidr victim;
  AsId owner = kInvalidAs;
  for (const PrefixRecord& record : env_.table.AllPrefixes()) {
    int count = 0;
    net.node(record.owner)
        .store()
        .ForEachStoredIn(record.prefix,
                         [&count](const Guid&, const MappingEntry&) {
                           ++count;
                         });
    if (count > 0) {
      victim = record.prefix;
      owner = record.owner;
      break;
    }
  }
  ASSERT_NE(owner, kInvalidAs) << "no populated prefix found";

  const std::size_t store_before = net.node(owner).store().size();
  int migrated = -1;
  net.WithdrawPrefixAsync(victim, owner, env_.table,
                          [&](int count) { migrated = count; });
  net.simulator().Run();
  ASSERT_GT(migrated, 0);
  EXPECT_FALSE(env_.table.Lookup(victim.First()).has_value());
  EXPECT_EQ(net.node(owner).store().size(),
            store_before - std::size_t(migrated));

  // All GUIDs still resolve, and without migration hunting (the proactive
  // handoff already placed them where the new chains look).
  std::uint64_t hunts_before = 0;
  for (AsId as = 0; as < env_.graph.num_nodes(); ++as) {
    hunts_before += net.node(as).stats().migrations_requested;
  }
  for (std::uint64_t i = 0; i < params.num_guids; i += 5) {
    std::optional<LookupResult> result;
    net.LookupAsync(workload.GuidAt(i), 123,
                    [&](const LookupResult& r) { result = r; });
    net.simulator().Run();
    ASSERT_TRUE(result.has_value());
    EXPECT_TRUE(result->found) << "guid " << i;
    EXPECT_EQ(result->attempts, 1) << "guid " << i;
  }
  std::uint64_t hunts_after = 0;
  for (AsId as = 0; as < env_.graph.num_nodes(); ++as) {
    hunts_after += net.node(as).stats().migrations_requested;
  }
  EXPECT_EQ(hunts_after, hunts_before);
}

TEST_F(ProtocolNetworkTest, WithdrawalOfUnknownPrefixThrows) {
  ProtocolNetwork net(env_.graph, env_.table, Options());
  EXPECT_THROW(net.WithdrawPrefixAsync(
                   Cidr(Ipv4Address::FromOctets(10, 0, 0, 0), 8), 0,
                   env_.table, [](int) {}),
               std::invalid_argument);
}

TEST_F(ProtocolNetworkTest, TrafficAccountingIsConsistent) {
  ProtocolNetwork net(env_.graph, env_.table, Options());
  const Guid g = Guid::FromSequence(5);
  bool done = false;
  net.InsertAsync(g, NetworkAddress{10, 1},
                  [&](const UpdateResult&) { done = true; });
  net.simulator().Run();
  ASSERT_TRUE(done);
  // K inserts + K acks (plus nothing else — no maintenance traffic, the
  // paper's key overhead claim versus DHTs).
  EXPECT_EQ(net.messages_sent(), 6u);
  // Each message is at least header + guid.
  EXPECT_GE(net.bytes_sent(), net.messages_sent() * 40);
}

TEST_F(ProtocolNetworkTest, InvalidArgumentsThrow) {
  ProtocolNetwork net(env_.graph, env_.table, Options());
  EXPECT_THROW(net.InsertAsync(Guid::FromSequence(6),
                               NetworkAddress{env_.graph.num_nodes(), 1},
                               [](const UpdateResult&) {}),
               std::invalid_argument);
  EXPECT_THROW(net.LookupAsync(Guid::FromSequence(6),
                               env_.graph.num_nodes(),
                               [](const LookupResult&) {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace dmap
