// The quorum/read-repair discipline end to end: convergence of the
// version-gated store under adversarial delivery orders, write-quorum
// completion and failure semantics on the wire, read fan-out with
// max-stamp resolution and read-repair, pairwise partitions, and the
// anti-entropy round. DESIGN.md section 14 is the contract under test.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/dmap_service.h"
#include "core/mapping_store.h"
#include "fault/fault_plan.h"
#include "proto/network.h"
#include "sim/environment.h"

namespace dmap {
namespace {

// ---------------------------------------------------------------------------
// Store-level property: the version gate makes replica writes a semilattice.

MappingEntry MakeEntry(std::uint64_t version, AsId writer) {
  MappingEntry entry;
  entry.version = version;
  entry.writer = writer;
  entry.nas.Add(NetworkAddress{writer, std::uint32_t(version)});
  return entry;
}

// Any permutation of the same write set, with arbitrary duplication,
// converges both stores to the unique max-stamp entry — the property the
// whole repair machinery (read-repair, anti-entropy, migrate handoff)
// leans on when it re-sends writes without coordination.
TEST(ConsistencyPropertyTest, ShuffledDuplicatedUpsertsConverge) {
  const Guid g = Guid::FromSequence(42);

  std::vector<MappingEntry> writes;
  for (std::uint64_t version = 1; version <= 6; ++version) {
    for (const AsId writer : {AsId(3), AsId(7), AsId(11)}) {
      writes.push_back(MakeEntry(version, writer));
    }
  }
  const MappingEntry expected = MakeEntry(6, 11);  // unique max stamp

  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    // Every write delivered twice, in a seed-dependent order.
    std::vector<MappingEntry> delivery = writes;
    delivery.insert(delivery.end(), writes.begin(), writes.end());
    Rng rng(seed);
    for (std::size_t i = delivery.size(); i > 1; --i) {
      std::swap(delivery[i - 1], delivery[rng.NextBounded(i)]);
    }

    MappingStore flat;
    ShardedMappingStore sharded(/*num_ases=*/16, /*num_shards=*/4);
    for (const MappingEntry& entry : delivery) {
      flat.Upsert(g, entry);
      sharded.Upsert(/*as=*/5, g, entry);
    }

    const MappingEntry* flat_final = flat.Lookup(g);
    const MappingEntry* sharded_final = sharded.Lookup(5, g);
    ASSERT_NE(flat_final, nullptr) << "seed " << seed;
    ASSERT_NE(sharded_final, nullptr) << "seed " << seed;
    EXPECT_EQ(*flat_final, expected) << "seed " << seed;
    EXPECT_EQ(*sharded_final, expected) << "seed " << seed;

    // Idempotence at the fixed point: replaying the winner (an equal-stamp
    // overwrite, the shape a duplicated repair takes) changes nothing.
    flat.Upsert(g, expected);
    sharded.Upsert(5, g, expected);
    EXPECT_EQ(*flat.Lookup(g), expected);
    EXPECT_EQ(*sharded.Lookup(5, g), expected);
  }
}

// ---------------------------------------------------------------------------
// Wire-level quorum semantics.

class ConsistencyTest : public testing::Test {
 protected:
  ConsistencyTest()
      : env_(BuildEnvironment(EnvironmentParams::Scaled(300, 61))) {}

  ProtocolNetworkOptions Options() {
    ProtocolNetworkOptions o;
    o.k = 3;
    o.local_replica = false;
    return o;
  }

  // The probe order a client at `querier` uses, from a closed-form
  // reference configured like `options`.
  std::vector<std::pair<AsId, double>> ReferencePlan(
      const ProtocolNetworkOptions& options, const Guid& guid,
      NetworkAddress na, AsId querier) {
    DMapOptions ref;
    ref.k = options.k;
    ref.local_replica = options.local_replica;
    DMapService reference(env_.graph, env_.table, ref);
    (void)reference.Insert(guid, na);
    return reference.ProbePlan(guid, querier);
  }

  std::optional<UpdateResult> Insert(ProtocolNetwork& net, const Guid& g,
                                     NetworkAddress na) {
    std::optional<UpdateResult> result;
    net.InsertAsync(g, na, [&](const UpdateResult& r) { result = r; });
    net.simulator().Run();
    return result;
  }

  std::optional<LookupResult> Lookup(ProtocolNetwork& net, const Guid& g,
                                     AsId querier) {
    std::optional<LookupResult> result;
    net.LookupAsync(g, querier, [&](const LookupResult& r) { result = r; });
    net.simulator().Run();
    return result;
  }

  SimEnvironment env_;
};

// Fewer reachable replicas than W is a *loud* failure: the write reports
// kQuorumFailed, and the replicas that did apply keep the entry — never a
// silent partial write in either direction.
TEST_F(ConsistencyTest, QuorumFailureIsNeverSilentPartial) {
  ProtocolNetworkOptions options = Options();  // W = majority of 3 = 2
  ProtocolNetwork net(env_.graph, env_.table, options);
  const Guid g = Guid::FromSequence(21);
  const NetworkAddress na{10, 1};

  const auto first = Insert(net, g, na);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->status, ResolverStatus::kOk);
  ASSERT_EQ(first->replicas.size(), 3u);

  // One replica down: the majority is still reachable.
  net.FailAs(first->replicas[0]);
  const auto second = Insert(net, g, NetworkAddress{10, 2});
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->status, ResolverStatus::kOk);
  EXPECT_EQ(net.quorum_failures(), 0u);

  // Two down: only one replica can apply — below W = 2.
  net.FailAs(first->replicas[1]);
  const auto third = Insert(net, g, NetworkAddress{10, 3});
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->status, ResolverStatus::kQuorumFailed);
  EXPECT_GT(third->latency_ms, 0.0);
  EXPECT_EQ(net.quorum_failures(), 1u);

  // The survivor holds the failed write's version (no rollback: repair
  // converges the rest once the dead recover); the dead replicas are
  // stuck at the last version they acknowledged.
  const MappingEntry* survivor =
      net.node(first->replicas[2]).store().Lookup(g);
  ASSERT_NE(survivor, nullptr);
  EXPECT_EQ(survivor->version, third->version);
  const MappingEntry* dead = net.node(first->replicas[0]).store().Lookup(g);
  ASSERT_NE(dead, nullptr);
  EXPECT_EQ(dead->version, first->version);
}

// W = 1 is the paper's fire-and-wait-all mode: the same two-failure
// scenario still reports success, exactly like the pre-quorum protocol.
TEST_F(ConsistencyTest, LegacyWriteModeNeverFailsQuorum) {
  ProtocolNetworkOptions options = Options();
  options.write_quorum = 1;
  ProtocolNetwork net(env_.graph, env_.table, options);
  const Guid g = Guid::FromSequence(22);

  const auto first = Insert(net, g, NetworkAddress{10, 1});
  ASSERT_TRUE(first.has_value());
  net.FailAs(first->replicas[0]);
  net.FailAs(first->replicas[1]);
  const auto second = Insert(net, g, NetworkAddress{10, 2});
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->status, ResolverStatus::kOk);
  EXPECT_EQ(net.quorum_failures(), 0u);
}

// The textbook invariant: overlapping quorums (W + R > replica set size)
// mean a fault-free read always includes at least one replica that applied
// the latest committed write — zero stale reads, every lookup current.
TEST_F(ConsistencyTest, OverlappingQuorumsReadTheirWrites) {
  ProtocolNetworkOptions options = Options();
  options.write_quorum = 2;
  options.read_quorum = 2;  // W + R = 4 > K = 3
  ProtocolNetwork net(env_.graph, env_.table, options);

  std::vector<Guid> guids;
  for (std::uint64_t seq = 300; seq < 330; ++seq) {
    guids.push_back(Guid::FromSequence(seq));
  }
  // Two writes per GUID, racing in flight: the stamp gate settles every
  // replica on version 2 regardless of arrival order.
  for (const Guid& g : guids) {
    net.InsertAsync(g, NetworkAddress{10, 1}, [](const UpdateResult&) {});
    net.InsertAsync(g, NetworkAddress{10, 2}, [](const UpdateResult&) {});
  }
  net.simulator().Run();

  int found = 0;
  for (std::size_t i = 0; i < guids.size(); ++i) {
    const AsId querier = AsId(3 + 31 * i) % env_.graph.num_nodes();
    const auto result = Lookup(net, guids[i], querier);
    ASSERT_TRUE(result.has_value());
    EXPECT_TRUE(result->found);
    EXPECT_TRUE(result->nas.Contains(NetworkAddress{10, 2}))
        << "lookup " << i << " returned a stale version";
    ++found;
  }
  EXPECT_EQ(found, 30);
  EXPECT_EQ(net.stale_reads(), 0u);
}

// R = 1 against a stale first replica is the measurable violation: the
// lookup returns the old version and the stale-read counter says so.
TEST_F(ConsistencyTest, SingleReadQuorumCountsStaleReads) {
  ProtocolNetworkOptions options = Options();  // W = 2 keeps commits tracked
  ProtocolNetwork net(env_.graph, env_.table, options);
  const Guid g = Guid::FromSequence(23);
  const AsId querier = 123;

  const auto v1 = Insert(net, g, NetworkAddress{10, 1});
  const auto v2 = Insert(net, g, NetworkAddress{10, 2});
  ASSERT_TRUE(v1.has_value() && v2.has_value());

  // Rewind the first-probe replica to version 1: a crash that lost the
  // second write, restored from an old copy.
  const auto plan = ReferencePlan(options, g, NetworkAddress{10, 1}, querier);
  const AsId stale_host = plan[0].first;
  MappingEntry old_entry;
  old_entry.version = v1->version;
  old_entry.writer = 10;
  old_entry.nas.Add(NetworkAddress{10, 1});
  net.node(stale_host).store().Clear();
  ASSERT_TRUE(net.node(stale_host).store().Upsert(g, old_entry));

  const auto result = Lookup(net, g, querier);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->found);
  EXPECT_TRUE(result->nas.Contains(NetworkAddress{10, 1}));  // the stale NA
  EXPECT_EQ(net.stale_reads(), 1u);
}

// R = K fans out to every replica: the max-stamp answer wins even when the
// lowest-RTT replica is stale, and the stale replier is read-repaired.
TEST_F(ConsistencyTest, ReadFanoutReturnsMaxStampAndRepairsStaleReplica) {
  ProtocolNetworkOptions options = Options();
  options.write_quorum = 2;
  options.read_quorum = 3;
  ProtocolNetwork net(env_.graph, env_.table, options);
  const Guid g = Guid::FromSequence(24);
  const AsId querier = 123;

  const auto v1 = Insert(net, g, NetworkAddress{10, 1});
  const auto v2 = Insert(net, g, NetworkAddress{10, 2});
  ASSERT_TRUE(v1.has_value() && v2.has_value());

  const auto plan = ReferencePlan(options, g, NetworkAddress{10, 1}, querier);
  const AsId stale_host = plan[0].first;
  MappingEntry old_entry;
  old_entry.version = v1->version;
  old_entry.writer = 10;
  old_entry.nas.Add(NetworkAddress{10, 1});
  net.node(stale_host).store().Clear();
  ASSERT_TRUE(net.node(stale_host).store().Upsert(g, old_entry));

  const auto result = Lookup(net, g, querier);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->found);
  // The fan-out saw both versions and returned the newer one...
  EXPECT_TRUE(result->nas.Contains(NetworkAddress{10, 2}));
  EXPECT_EQ(net.stale_reads(), 0u);
  // ...and pushed it back at the stale replier.
  EXPECT_EQ(net.read_repairs(), 1u);
  const MappingEntry* repaired = net.node(stale_host).store().Lookup(g);
  ASSERT_NE(repaired, nullptr);
  EXPECT_EQ(repaired->version, v2->version);
}

// A pairwise partition silently eats the probe to the first replica (both
// endpoints stay up); the client times out and falls through, exactly like
// a crashed destination — but only for this one pair.
TEST_F(ConsistencyTest, PartitionDropsOnlyTheCutPair) {
  const ProtocolNetworkOptions options = Options();
  ProtocolNetwork net(env_.graph, env_.table, options);
  const Guid g = Guid::FromSequence(25);
  const NetworkAddress na{10, 1};
  const AsId querier = 123;
  ASSERT_TRUE(Insert(net, g, na).has_value());

  const auto plan = ReferencePlan(options, g, na, querier);
  ASSERT_NE(plan[0].first, plan[1].first);
  ASSERT_NE(plan[1].first, querier);

  FaultPlan fault_plan;
  PartitionWindow window;
  window.a = querier;
  window.b = plan[0].first;
  fault_plan.partitions.push_back(window);  // [0, forever)
  net.ApplyFaultPlan(fault_plan, /*seed=*/4);

  const std::uint64_t dropped_before = net.messages_dropped();
  const auto result = Lookup(net, g, querier);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->found);
  EXPECT_EQ(result->attempts, 2);  // cut pair timed out, next replica hit
  const double expected_timeout =
      std::max(options.failure_timeout_ms, 1.5 * plan[0].second);
  EXPECT_NEAR(result->latency_ms, expected_timeout + plan[1].second, 1e-4);
  EXPECT_EQ(net.messages_dropped(), dropped_before + 1);
}

// One anti-entropy round refills a wiped replica from the freshest copy,
// and a second round over a converged system sends nothing.
TEST_F(ConsistencyTest, AntiEntropyRefillsWipedReplica) {
  ProtocolNetworkOptions options = Options();
  options.anti_entropy_budget = 8;
  ProtocolNetwork net(env_.graph, env_.table, options);

  std::vector<Guid> guids;
  std::vector<std::vector<AsId>> replicas;
  for (std::uint64_t seq = 400; seq < 405; ++seq) {
    const Guid g = Guid::FromSequence(seq);
    const auto result = Insert(net, g, NetworkAddress{10, 1});
    ASSERT_TRUE(result.has_value());
    guids.push_back(g);
    replicas.push_back(result->replicas);
  }

  // One host crashes and loses its whole store (every replica it held).
  const AsId wiped = replicas[0][0];
  net.node(wiped).store().Clear();

  const int sent = net.RunAntiEntropyRound(options.anti_entropy_budget);
  EXPECT_GT(sent, 0);
  EXPECT_EQ(net.anti_entropy_repairs(), std::uint64_t(sent));
  net.simulator().Run();  // deliver the repair writes

  for (std::size_t i = 0; i < guids.size(); ++i) {
    for (const AsId host : replicas[i]) {
      EXPECT_NE(net.node(host).store().Lookup(guids[i]), nullptr)
          << "guid " << i << " missing at replica " << host;
    }
  }
  // Converged: the next full sweep finds nothing to push.
  EXPECT_EQ(net.RunAntiEntropyRound(options.anti_entropy_budget), 0);

  // Budget 0 disables the round outright.
  EXPECT_EQ(net.RunAntiEntropyRound(0), 0);
}

}  // namespace
}  // namespace dmap
