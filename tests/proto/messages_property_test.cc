// Randomised serialisation properties: every randomly generated message
// round-trips bit-exactly, and random single-byte corruptions either fail
// to decode or decode to a well-formed message (never crash, never read out
// of bounds).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "proto/messages.h"

namespace dmap {
namespace {

Message RandomMessage(Rng& rng) {
  MessageHeader header{rng.Next(), AsId(rng.NextBounded(1u << 20)),
                       AsId(rng.NextBounded(1u << 20))};
  const Guid guid = Guid::FromSequence(rng.Next());
  MappingEntry entry;
  entry.version = rng.Next();
  const int nas = int(rng.NextBounded(NaSet::kMaxNas + 1));
  for (int i = 0; i < nas; ++i) {
    entry.nas.Add(NetworkAddress{AsId(rng.NextBounded(1u << 20)),
                                 std::uint32_t(rng.Next())});
  }
  switch (rng.NextBounded(8)) {
    case 0:
      return InsertRequest{header, guid, entry, Ipv4Address{}};
    case 1:
      return InsertAck{header, guid, rng.NextBernoulli(0.5)};
    case 2:
      return LookupRequest{header, guid};
    case 3: {
      const bool found = rng.NextBernoulli(0.5);
      return LookupResponse{header, guid, found,
                            found ? entry : MappingEntry{}};
    }
    case 4:
      return MigrateRequest{header, guid};
    case 5: {
      const bool found = rng.NextBernoulli(0.5);
      return MigrateResponse{header, guid, found,
                             found ? entry : MappingEntry{}};
    }
    case 6: {
      BatchUpdateRequest m{header, {}};
      const int count = int(rng.NextBounded(8));
      for (int i = 0; i < count; ++i) {
        BatchUpdateEntry e;
        e.guid = Guid::FromSequence(rng.Next());
        e.entry.version = rng.Next();
        e.entry.writer = std::uint32_t(rng.NextBounded(1u << 20));
        const int batch_nas = int(rng.NextBounded(NaSet::kMaxNas + 1));
        for (int j = 0; j < batch_nas; ++j) {
          e.entry.nas.Add(NetworkAddress{AsId(rng.NextBounded(1u << 20)),
                                         std::uint32_t(rng.Next())});
        }
        e.stored_address = Ipv4Address(std::uint32_t(rng.Next()));
        m.entries.push_back(e);
      }
      return m;
    }
    default: {
      BatchUpdateResponse m{header, {}, {}};
      const int count = int(rng.NextBounded(8));
      for (int i = 0; i < count; ++i) {
        m.guids.push_back(Guid::FromSequence(rng.Next()));
        m.applied.push_back(rng.NextBernoulli(0.5) ? 1 : 0);
      }
      return m;
    }
  }
}

bool MessagesEqual(const Message& a, const Message& b) {
  if (TypeOf(a) != TypeOf(b)) return false;
  // Re-encoding must produce identical bytes — a complete equality check
  // given the format is canonical.
  return Encode(a) == Encode(b);
}

class MessagesFuzzTest : public testing::TestWithParam<std::uint64_t> {};

TEST_P(MessagesFuzzTest, RandomMessagesRoundTrip) {
  Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    const Message original = RandomMessage(rng);
    const std::vector<std::uint8_t> wire = Encode(original);
    EXPECT_EQ(wire.size(), EncodedSize(original));
    const std::optional<Message> decoded = Decode(wire);
    ASSERT_TRUE(decoded.has_value()) << "message " << i;
    EXPECT_TRUE(MessagesEqual(original, *decoded)) << "message " << i;
    const MessageHeader& h = HeaderOf(*decoded);
    EXPECT_EQ(h.request_id, HeaderOf(original).request_id);
    EXPECT_EQ(h.src, HeaderOf(original).src);
    EXPECT_EQ(h.dst, HeaderOf(original).dst);
  }
}

TEST_P(MessagesFuzzTest, SingleByteCorruptionNeverCrashes) {
  Rng rng(GetParam() ^ 0xc0ffee);
  for (int i = 0; i < 200; ++i) {
    const Message original = RandomMessage(rng);
    std::vector<std::uint8_t> wire = Encode(original);
    const std::size_t pos = std::size_t(rng.NextBounded(wire.size()));
    const auto flip = std::uint8_t(1 + rng.NextBounded(255));
    wire[pos] ^= flip;
    // Must not crash; may decode (header/id bytes are free-form) or not.
    const std::optional<Message> decoded = Decode(wire);
    if (decoded) {
      // Whatever decoded must re-encode to the same bytes (canonical).
      EXPECT_EQ(Encode(*decoded), wire);
    }
  }
}

TEST_P(MessagesFuzzTest, RandomGarbageNeverDecodesToNonsense) {
  Rng rng(GetParam() ^ 0xdead);
  for (int i = 0; i < 200; ++i) {
    std::vector<std::uint8_t> garbage(rng.NextBounded(120));
    for (auto& b : garbage) b = std::uint8_t(rng.Next());
    const auto decoded = Decode(garbage);
    if (decoded) {
      // Pure luck (valid magic+version+type+lengths): still canonical.
      EXPECT_EQ(Encode(*decoded), garbage);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MessagesFuzzTest,
                         testing::Values(1, 7, 42, 1234, 99999));

}  // namespace
}  // namespace dmap
