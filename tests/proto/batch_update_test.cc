// Batched-vs-sequential equivalence: the mobility fast path must change
// the wire accounting and the completion model, never the stored mapping
// state. Each suite replays the same handoff schedule through sequential
// singleton updates and through batches of several sizes, then asserts the
// resulting stores are indistinguishable — on the closed-form service, the
// event-driven wrapper, and the wire-protocol network.
#include <gtest/gtest.h>

#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/dmap_service.h"
#include "proto/network.h"
#include "sim/environment.h"
#include "sim/event_driven.h"
#include "workload/mobility.h"

namespace dmap {
namespace {

class BatchUpdateTest : public testing::Test {
 protected:
  BatchUpdateTest()
      : env_(BuildEnvironment(EnvironmentParams::Scaled(300, 61))) {}

  DMapOptions Options() const {
    DMapOptions o;
    o.k = 3;
    o.measure_update_latency = true;
    return o;
  }

  MobilityParams Params(std::uint32_t hosts = 20) const {
    MobilityParams p;
    p.num_hosts = hosts;
    p.guids_per_host = 6;
    p.handoff_rate_hz = 1.0;
    p.horizon_s = 3.0;
    p.seed = 17;
    return p;
  }

  // Canonical store dump: for every workload GUID, the (as, version,
  // attachment) of every AS holding a replica — a full scan over the AS
  // space, so missing and surplus replicas both show up as differences.
  std::vector<std::uint64_t> Dump(const DMapService& service,
                                  const MobilityWorkload& workload) const {
    std::vector<std::uint64_t> out;
    for (std::uint32_t host = 0; host < workload.params().num_hosts; ++host) {
      for (std::uint32_t i = 0; i < workload.params().guids_per_host; ++i) {
        const Guid g = workload.GuidOf(host, i);
        for (AsId as = 0; as < env_.graph.num_nodes(); ++as) {
          const MappingEntry* e = service.StoreLookup(as, g);
          if (e == nullptr) continue;
          out.push_back(as);
          out.push_back(e->version);
          out.push_back(e->nas[0].as);
          out.push_back(e->nas[0].locator);
        }
      }
    }
    return out;
  }

  SimEnvironment env_;
};

TEST_F(BatchUpdateTest, ClosedFormMatchesSequentialForEveryBatchSize) {
  const MobilityWorkload workload(env_.graph, Params());

  // Reference leg: singleton Update calls, recording every result.
  DMapService sequential(env_.graph, env_.table, Options());
  for (const InsertOp& op : workload.InitialInserts()) {
    (void)sequential.Insert(op.guid, op.na);
  }
  std::vector<UpdateResult> expected;
  for (const Handoff& handoff : workload.Handoffs()) {
    for (const auto& [guid, na] : workload.MovesFor(handoff)) {
      expected.push_back(sequential.Update(guid, na));
    }
  }
  const std::vector<std::uint64_t> want = Dump(sequential, workload);

  for (const int batch_size : {1, 4, 16, 64}) {
    DMapService batched(env_.graph, env_.table, Options());
    for (const InsertOp& op : workload.InitialInserts()) {
      (void)batched.Insert(op.guid, op.na);
    }
    std::vector<UpdateResult> got;
    std::vector<std::pair<Guid, NetworkAddress>> chunk;
    for (const Handoff& handoff : workload.Handoffs()) {
      const auto moves = workload.MovesFor(handoff);
      for (std::size_t begin = 0; begin < moves.size();
           begin += std::size_t(batch_size)) {
        const std::size_t end =
            std::min(moves.size(), begin + std::size_t(batch_size));
        chunk.assign(moves.begin() + long(begin), moves.begin() + long(end));
        const BatchUpdateResult wave = batched.BatchUpdate(chunk);
        EXPECT_EQ(wave.status, ResolverStatus::kOk);
        EXPECT_EQ(wave.guids, int(chunk.size()));
        EXPECT_EQ(wave.entries_applied, wave.entries);
        EXPECT_LE(wave.messages, wave.unbatched_messages);
        got.insert(got.end(), wave.per_guid.begin(), wave.per_guid.end());
      }
    }
    // Per-GUID results identical to the sequential Update stream...
    ASSERT_EQ(got.size(), expected.size()) << "batch " << batch_size;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].replicas, expected[i].replicas);
      EXPECT_EQ(got[i].version, expected[i].version);
      EXPECT_DOUBLE_EQ(got[i].latency_ms, expected[i].latency_ms);
    }
    // ...and so is the full stored state, replica by replica.
    EXPECT_EQ(Dump(batched, workload), want) << "batch " << batch_size;
  }
}

TEST_F(BatchUpdateTest, BatchAccountingCountsDistinctDestinations) {
  DMapService service(env_.graph, env_.table, Options());
  const AsId dst = 42;
  std::vector<std::pair<Guid, NetworkAddress>> moves;
  for (std::uint64_t i = 0; i < 16; ++i) {
    const Guid g = Guid::FromSequence(i);
    (void)service.Insert(g, NetworkAddress{7, 1});
    moves.emplace_back(g, NetworkAddress{dst, std::uint32_t(i)});
  }
  const BatchUpdateResult wave = service.BatchUpdate(moves);
  // One singleton InsertRequest per (guid, replica) is replaced by one
  // BatchUpdateRequest per distinct destination AS.
  EXPECT_EQ(wave.unbatched_messages, 16u * 3u);
  EXPECT_GE(wave.messages, 1u);
  EXPECT_LE(wave.messages, wave.entries);
  EXPECT_LT(wave.messages, wave.unbatched_messages);
  EXPECT_EQ(wave.entries, 16u * 3u);
}

TEST_F(BatchUpdateTest, BatchValidationRejectsBadMoves) {
  DMapService service(env_.graph, env_.table, Options());
  const Guid g = Guid::FromSequence(1);
  (void)service.Insert(g, NetworkAddress{7, 1});
  // Mixed destination ASes: one host hands off to one gateway.
  EXPECT_THROW((void)service.BatchUpdate({{g, NetworkAddress{10, 1}},
                                          {g, NetworkAddress{11, 1}}}),
               std::invalid_argument);
  // Unknown GUID: batches refresh registered mappings only.
  EXPECT_THROW(
      (void)service.BatchUpdate({{Guid::FromSequence(999),
                                  NetworkAddress{10, 1}}}),
      std::invalid_argument);
  // The failed batch must not have half-applied the valid prefix.
  EXPECT_EQ(service.StoreLookup(7, g)->version, 1u);
}

TEST_F(BatchUpdateTest, EventDrivenAgreesWithClosedForm) {
  const MobilityWorkload workload(env_.graph, Params(4));

  DMapService reference(env_.graph, env_.table, Options());
  Simulator sim;
  DMapService event_service(env_.graph, env_.table, Options());
  EventDrivenLookup wrapper(sim, event_service);
  for (const InsertOp& op : workload.InitialInserts()) {
    (void)reference.Insert(op.guid, op.na);
    (void)event_service.Insert(op.guid, op.na);
  }

  for (const Handoff& handoff : workload.Handoffs()) {
    const auto moves = workload.MovesFor(handoff);
    const BatchUpdateResult expected = reference.BatchUpdate(moves);
    std::optional<BatchUpdateResult> got;
    const SimTime started = sim.Now();
    wrapper.BatchUpdateAsync(moves, SimTime::Zero(),
                             [&](const BatchUpdateResult& r) { got = r; });
    sim.Run();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->messages, expected.messages);
    EXPECT_EQ(got->entries_applied, expected.entries_applied);
    EXPECT_DOUBLE_EQ(got->latency_ms, expected.latency_ms);
    // The callback fires at the simulated completion time (the running
    // clock accumulates across handoffs, so allow float summation error).
    EXPECT_NEAR((sim.Now() - started).millis(), expected.latency_ms, 1e-6);
  }
  EXPECT_EQ(Dump(event_service, workload), Dump(reference, workload));
}

TEST_F(BatchUpdateTest, WireBatchMatchesSequentialInserts) {
  const MobilityWorkload workload(env_.graph, Params(4));

  ProtocolNetworkOptions options;
  options.k = 3;
  ProtocolNetwork sequential(env_.graph, env_.table, options);
  ProtocolNetwork batched(env_.graph, env_.table, options);
  for (const InsertOp& op : workload.InitialInserts()) {
    for (ProtocolNetwork* net : {&sequential, &batched}) {
      net->InsertAsync(op.guid, op.na, [](const UpdateResult&) {});
      net->simulator().Run();
    }
  }

  const std::uint64_t seq_before = sequential.messages_sent();
  const std::uint64_t batch_before = batched.messages_sent();
  for (const Handoff& handoff : workload.Handoffs()) {
    const auto moves = workload.MovesFor(handoff);
    for (const auto& [guid, na] : moves) {
      sequential.InsertAsync(guid, na, [](const UpdateResult&) {});
      sequential.simulator().Run();
    }
    std::optional<BatchUpdateResult> wave;
    batched.BatchUpdateAsync(moves,
                             [&](const BatchUpdateResult& r) { wave = r; });
    batched.simulator().Run();
    ASSERT_TRUE(wave.has_value());
    EXPECT_EQ(wave->entries_applied, wave->entries);
    EXPECT_GT(wave->latency_ms, 0.0);
  }
  // Fewer wire messages for the same handoffs...
  EXPECT_LT(batched.messages_sent() - batch_before,
            sequential.messages_sent() - seq_before);

  // ...and byte-identical replica stores at every AS.
  for (AsId as = 0; as < env_.graph.num_nodes(); ++as) {
    const MappingStore& a = sequential.node(as).store();
    const MappingStore& b = batched.node(as).store();
    ASSERT_EQ(a.size(), b.size()) << "AS " << as;
    a.ForEach([&](const Guid& guid, const MappingEntry& entry) {
      const MappingEntry* other = b.Lookup(guid);
      ASSERT_NE(other, nullptr) << "AS " << as;
      EXPECT_EQ(other->version, entry.version);
      EXPECT_TRUE(other->nas == entry.nas);
    });
  }
}

}  // namespace
}  // namespace dmap
