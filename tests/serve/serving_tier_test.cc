#include "serve/serving_tier.h"

#include <gtest/gtest.h>

#include <vector>

#include "obs/metrics_registry.h"

namespace dmap {
namespace {

using SimTime = dmap::SimTime;

ServingConfig Deterministic(double rate_per_s, int concurrency,
                            int queue_depth) {
  ServingConfig config;
  config.enabled = true;
  config.model = ServiceModel::kDeterministic;
  config.service_rate_per_s = rate_per_s;
  config.concurrency = concurrency;
  config.queue_depth = queue_depth;
  config.bucket_rate_per_s = 0.0;  // bucket off
  return config;
}

TEST(ServingTierTest, IdleServerServesImmediately) {
  ServingTier tier(Deterministic(1000.0, 1, 4));  // 1 ms service
  const AdmitResult r = tier.Admit(7, SimTime::Millis(5.0));
  EXPECT_EQ(r.outcome, AdmissionOutcome::kServed);
  EXPECT_DOUBLE_EQ(r.queue_delay_ms, 0.0);
  EXPECT_DOUBLE_EQ(r.service_ms, 1.0);
  EXPECT_DOUBLE_EQ(r.DelayMs(), 1.0);
}

// FIFO wait math: with c=1 and 1 ms deterministic service, back-to-back
// arrivals at t=0 wait 0, 1, 2, ... ms — each starts when its predecessor
// completes.
TEST(ServingTierTest, FifoQueueWaitsAccumulate) {
  ServingTier tier(Deterministic(1000.0, 1, 10));
  for (int i = 0; i < 5; ++i) {
    const AdmitResult r = tier.Admit(7, SimTime::Zero());
    EXPECT_EQ(r.outcome, i == 0 ? AdmissionOutcome::kServed
                                : AdmissionOutcome::kQueued);
    EXPECT_DOUBLE_EQ(r.queue_delay_ms, double(i));
  }
  // After the backlog drains, a later arrival is served immediately again.
  const AdmitResult later = tier.Admit(7, SimTime::Millis(100.0));
  EXPECT_EQ(later.outcome, AdmissionOutcome::kServed);
  EXPECT_DOUBLE_EQ(later.queue_delay_ms, 0.0);
}

// c servers absorb c arrivals with no wait; the (c+1)-th queues behind the
// earliest completion.
TEST(ServingTierTest, ConcurrencyAdmitsInParallel) {
  ServingTier tier(Deterministic(1000.0, 3, 10));
  for (int i = 0; i < 3; ++i) {
    const AdmitResult r = tier.Admit(7, SimTime::Zero());
    EXPECT_EQ(r.outcome, AdmissionOutcome::kServed);
    EXPECT_DOUBLE_EQ(r.queue_delay_ms, 0.0);
  }
  const AdmitResult queued = tier.Admit(7, SimTime::Zero());
  EXPECT_EQ(queued.outcome, AdmissionOutcome::kQueued);
  EXPECT_DOUBLE_EQ(queued.queue_delay_ms, 1.0);
}

TEST(ServingTierTest, BoundedQueueShedsOverflow) {
  ServingTier tier(Deterministic(1000.0, 1, 2));  // 1 serving + 2 waiting
  for (int i = 0; i < 3; ++i) {
    EXPECT_NE(tier.Admit(7, SimTime::Zero()).outcome,
              AdmissionOutcome::kShed);
  }
  const AdmitResult shed = tier.Admit(7, SimTime::Zero());
  EXPECT_EQ(shed.outcome, AdmissionOutcome::kShed);
  EXPECT_DOUBLE_EQ(shed.DelayMs(), 0.0);
  EXPECT_EQ(tier.shed_queue(), 1u);
  // Sheds leave the station untouched: once a slot drains, admission works.
  const AdmitResult after = tier.Admit(7, SimTime::Millis(1.5));
  EXPECT_EQ(after.outcome, AdmissionOutcome::kQueued);
  // queue_depth = 0 degenerates to a pure loss system (M/M/c/c).
  ServingTier loss(Deterministic(1000.0, 1, 0));
  EXPECT_EQ(loss.Admit(9, SimTime::Zero()).outcome,
            AdmissionOutcome::kServed);
  EXPECT_EQ(loss.Admit(9, SimTime::Zero()).outcome, AdmissionOutcome::kShed);
}

TEST(ServingTierTest, TokenBucketShedsBeforeQueueing) {
  ServingConfig config = Deterministic(1000.0, 1, 10);
  config.bucket_rate_per_s = 100.0;  // refill 0.1 tokens/ms
  config.bucket_burst = 2.0;
  ServingTier tier(config);
  // The bucket starts full: 2 tokens, then empty.
  EXPECT_NE(tier.Admit(7, SimTime::Zero()).outcome, AdmissionOutcome::kShed);
  EXPECT_NE(tier.Admit(7, SimTime::Zero()).outcome, AdmissionOutcome::kShed);
  EXPECT_EQ(tier.Admit(7, SimTime::Zero()).outcome, AdmissionOutcome::kShed);
  EXPECT_EQ(tier.shed_tokens(), 1u);
  // 10 ms later one token has refilled.
  EXPECT_NE(tier.Admit(7, SimTime::Millis(10.0)).outcome,
            AdmissionOutcome::kShed);
  EXPECT_EQ(tier.Admit(7, SimTime::Millis(10.0)).outcome,
            AdmissionOutcome::kShed);
}

// Servers are independent stations: load on one AS never delays another.
TEST(ServingTierTest, ServersAreIndependent) {
  ServingTier tier(Deterministic(1000.0, 1, 10));
  for (int i = 0; i < 4; ++i) tier.Admit(7, SimTime::Zero());
  const AdmitResult other = tier.Admit(8, SimTime::Zero());
  EXPECT_EQ(other.outcome, AdmissionOutcome::kServed);
  EXPECT_DOUBLE_EQ(other.queue_delay_ms, 0.0);
}

// Exponential service draws are pure functions of (seed, server, arrival
// index): two tiers with equal seeds produce identical delays regardless
// of interleaving with other servers' arrivals.
TEST(ServingTierTest, ExponentialDrawsAreSeedPure) {
  ServingConfig config = Deterministic(1000.0, 1, 100);
  config.model = ServiceModel::kExponential;
  config.seed = 42;

  ServingTier a(config);
  std::vector<double> service_a;
  for (int i = 0; i < 8; ++i) {
    service_a.push_back(
        a.Admit(7, SimTime::Millis(double(i) * 50.0)).service_ms);
  }

  ServingTier b(config);
  std::vector<double> service_b;
  for (int i = 0; i < 8; ++i) {
    // Interleave arrivals at a different server; server 7's draws must not
    // move (no shared stream).
    b.Admit(9, SimTime::Millis(double(i) * 50.0));
    service_b.push_back(
        b.Admit(7, SimTime::Millis(double(i) * 50.0)).service_ms);
  }
  EXPECT_EQ(service_a, service_b);

  ServingConfig other_seed = config;
  other_seed.seed = 43;
  ServingTier c(other_seed);
  EXPECT_NE(c.Admit(7, SimTime::Zero()).service_ms, service_a[0]);
}

// WouldShed is the pure read-side twin of Admit: probed immediately before
// every Admit call it must predict exactly whether that call sheds, and
// probing must never perturb the station (same delays with or without the
// probe). Exercised across both shed causes — token exhaustion and a full
// waiting room — plus first-contact servers and drained backlogs.
TEST(ServingTierTest, WouldShedAgreesWithAdmit) {
  // Phase A: token exhaustion (queue deep enough to never shed).
  ServingConfig bucket = Deterministic(1000.0, 1, 10);
  bucket.bucket_rate_per_s = 100.0;  // refill 0.1 tokens/ms
  bucket.bucket_burst = 2.0;
  ServingTier tier(bucket);
  ServingTier unprobed(bucket);
  const std::vector<std::pair<AsId, double>> arrivals = {
      {7, 0.0}, {7, 0.0},    // burst drains both tokens
      {7, 0.0},              // token shed
      {9, 0.0},              // first contact on another server
      {7, 10.0},             // one token refilled: served, bucket empty again
      {7, 10.0},             // token shed
      {7, 100.0},            // bucket and backlog both recovered
  };
  std::size_t sheds = 0;
  for (const auto& [server, at_ms] : arrivals) {
    const SimTime now = SimTime::Millis(at_ms);
    const bool forecast = tier.WouldShed(server, now);
    const AdmitResult result = tier.Admit(server, now);
    EXPECT_EQ(forecast, result.outcome == AdmissionOutcome::kShed)
        << "server " << server << " at " << at_ms << " ms";
    if (forecast) ++sheds;
    // The probe is pure: the unprobed twin stays in lockstep.
    const AdmitResult twin = unprobed.Admit(server, now);
    EXPECT_EQ(twin.outcome, result.outcome);
    EXPECT_DOUBLE_EQ(twin.DelayMs(), result.DelayMs());
  }
  EXPECT_EQ(sheds, 2u);
  EXPECT_EQ(tier.shed_tokens(), 2u);
  EXPECT_EQ(tier.shed(), unprobed.shed());

  // Phase B: waiting-room overflow (bucket off).
  ServingTier fifo(Deterministic(1000.0, 1, 2));  // 1 serving + 2 waiting
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(fifo.WouldShed(7, SimTime::Zero()));
    EXPECT_NE(fifo.Admit(7, SimTime::Zero()).outcome,
              AdmissionOutcome::kShed);
  }
  EXPECT_TRUE(fifo.WouldShed(7, SimTime::Zero()));
  EXPECT_EQ(fifo.Admit(7, SimTime::Zero()).outcome, AdmissionOutcome::kShed);
  EXPECT_EQ(fifo.shed_queue(), 1u);
  // One completion retires at t=1: the forecast tracks the drain.
  EXPECT_FALSE(fifo.WouldShed(7, SimTime::Millis(1.5)));
  EXPECT_EQ(fifo.Admit(7, SimTime::Millis(1.5)).outcome,
            AdmissionOutcome::kQueued);
}

// First contact never sheds under a valid configuration (Validate requires
// bucket_burst >= 1 whenever the bucket is active): WouldShed must forecast
// that from an empty server map, with and without the bucket.
TEST(ServingTierTest, WouldShedForecastsFirstContact) {
  ServingConfig config = Deterministic(1000.0, 1, 2);
  config.bucket_rate_per_s = 100.0;
  config.bucket_burst = 1.0;  // the tightest burst Validate allows
  ServingTier tier(config);
  EXPECT_FALSE(tier.WouldShed(7, SimTime::Zero()));
  EXPECT_EQ(tier.Admit(7, SimTime::Zero()).outcome,
            AdmissionOutcome::kServed);

  ServingTier plain(Deterministic(1000.0, 1, 2));  // bucket off
  EXPECT_FALSE(plain.WouldShed(7, SimTime::Zero()));
  EXPECT_EQ(plain.Admit(7, SimTime::Zero()).outcome,
            AdmissionOutcome::kServed);
}

TEST(ServingTierTest, HottestServerTracksArrivalsWithStableTieBreak) {
  ServingTier tier(Deterministic(1000.0, 1, 10));
  EXPECT_EQ(tier.HottestServer().second, 0u);
  tier.Admit(9, SimTime::Zero());
  tier.Admit(3, SimTime::Zero());
  tier.Admit(9, SimTime::Millis(10.0));
  const auto [as, count] = tier.HottestServer();
  EXPECT_EQ(as, AsId(9));
  EXPECT_EQ(count, 2u);
  // Equal counts: the lower AS id wins, independent of map iteration.
  tier.Admit(3, SimTime::Millis(20.0));
  EXPECT_EQ(tier.HottestServer().first, AsId(3));
}

TEST(ServingTierTest, CountersAndMetricsAgree) {
  MetricsRegistry registry(1);
  ServingConfig config = Deterministic(1000.0, 1, 1);
  ServingTier tier(config);
  tier.SetMetrics(&registry, 0);
  tier.Admit(7, SimTime::Zero());  // served
  tier.Admit(7, SimTime::Zero());  // queued
  tier.Admit(7, SimTime::Zero());  // shed (queue full)
  EXPECT_EQ(tier.arrivals(), 3u);
  EXPECT_EQ(tier.served(), 1u);
  EXPECT_EQ(tier.queued(), 1u);
  EXPECT_EQ(tier.shed(), 1u);

  const MetricsSnapshot snapshot = registry.Snapshot();
  for (const CounterSnapshot& counter : snapshot.counters) {
    if (counter.name == "serve.arrivals") {
      EXPECT_EQ(counter.value, 3u);
    } else if (counter.name == "serve.served") {
      EXPECT_EQ(counter.value, 1u);
    } else if (counter.name == "serve.queued") {
      EXPECT_EQ(counter.value, 1u);
    } else if (counter.name == "serve.shed_queue") {
      EXPECT_EQ(counter.value, 1u);
    } else if (counter.name == "serve.shed_tokens") {
      EXPECT_EQ(counter.value, 0u);
    }
  }
}

TEST(ServingTierTest, RejectsInvalidConfig) {
  ServingConfig config;
  config.concurrency = 0;
  EXPECT_THROW(ServingTier tier(config), std::invalid_argument);
}

}  // namespace
}  // namespace dmap
