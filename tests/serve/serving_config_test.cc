#include "serve/serving_config.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>

namespace dmap {
namespace {

TEST(ServingConfigTest, DefaultsAreDisabledAndValid) {
  const ServingConfig config;
  EXPECT_FALSE(config.enabled);
  EXPECT_NO_THROW(config.Validate());
  EXPECT_DOUBLE_EQ(config.MeanServiceMs(), 0.5);  // 2000/s
}

// Validation errors must name the offending field, like DMapOptions.
TEST(ServingConfigTest, ValidateNamesTheOffendingField) {
  ServingConfig config;
  config.service_rate_per_s = 0.0;
  try {
    config.Validate();
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("service_rate"), std::string::npos);
  }

  config = ServingConfig{};
  config.concurrency = 0;
  EXPECT_THROW(config.Validate(), std::invalid_argument);

  config = ServingConfig{};
  config.queue_depth = -1;
  EXPECT_THROW(config.Validate(), std::invalid_argument);

  config = ServingConfig{};
  config.bucket_rate_per_s = -1.0;
  EXPECT_THROW(config.Validate(), std::invalid_argument);

  config = ServingConfig{};
  config.bucket_rate_per_s = 100.0;
  config.bucket_burst = 0.5;
  try {
    config.Validate();
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("bucket_burst"), std::string::npos);
  }
  // An inactive bucket (admission=none) does not constrain bucket_burst.
  config.admission = AdmissionPolicy::kNone;
  EXPECT_NO_THROW(config.Validate());
}

TEST(ServingConfigTest, ParsesInlineArgWithImpliedEnable) {
  const ServingConfig config = ServingConfig::ParseArg(
      "model=exponential,service_rate=1250,concurrency=4,queue_depth=8,"
      "admission=none,seed=7");
  EXPECT_TRUE(config.enabled);  // passing the flag implies enabled
  EXPECT_EQ(config.model, ServiceModel::kExponential);
  EXPECT_DOUBLE_EQ(config.service_rate_per_s, 1250.0);
  EXPECT_EQ(config.concurrency, 4);
  EXPECT_EQ(config.queue_depth, 8);
  EXPECT_EQ(config.admission, AdmissionPolicy::kNone);
  EXPECT_EQ(config.seed, 7u);

  // An explicit enabled=false wins over the implied default.
  EXPECT_FALSE(ServingConfig::ParseArg("enabled=false,service_rate=10")
                   .enabled);
}

TEST(ServingConfigTest, InlineRejectsUnknownKeysAndBadEnums) {
  EXPECT_THROW(ServingConfig::ParseArg("service_rte=100"),
               std::invalid_argument);
  EXPECT_THROW(ServingConfig::ParseArg("model=gaussian"),
               std::invalid_argument);
  EXPECT_THROW(ServingConfig::ParseArg("admission=open"),
               std::invalid_argument);
  EXPECT_THROW(ServingConfig::ParseArg("service_rate=-5"),
               std::invalid_argument);
}

TEST(ServingConfigTest, ParsesFileFormAndShippedExample) {
  const std::string path =
      testing::TempDir() + "/serving_config_test.serving";
  {
    std::ofstream out(path);
    out << "# comment\nmodel = deterministic\nservice_rate = 333\n"
           "queue_depth = 2\n";
  }
  const ServingConfig config = ServingConfig::ParseArg(path);
  EXPECT_TRUE(config.enabled);  // files default to enabled too
  EXPECT_DOUBLE_EQ(config.service_rate_per_s, 333.0);
  EXPECT_EQ(config.queue_depth, 2);
  std::remove(path.c_str());
}

TEST(ServingConfigTest, WireNamesRoundTrip) {
  EXPECT_STREQ(ServiceModelName(ServiceModel::kDeterministic),
               "deterministic");
  EXPECT_STREQ(ServiceModelName(ServiceModel::kExponential), "exponential");
  EXPECT_STREQ(AdmissionPolicyName(AdmissionPolicy::kTokenBucket),
               "token_bucket");
  EXPECT_STREQ(AdmissionPolicyName(AdmissionPolicy::kNone), "none");
}

}  // namespace
}  // namespace dmap
