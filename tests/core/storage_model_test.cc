#include "core/storage_model.h"

#include <gtest/gtest.h>

#include <numeric>

#include "bgp/prefix_gen.h"

namespace dmap {
namespace {

TEST(StorageModelTest, ReproducesPaperHeadlineNumbers) {
  // Section IV-A: 5B GUIDs, K = 5, 352-bit entries, 26,424 ASs
  // -> ~173 Mbit per AS; 100 updates/day -> ~10 Gb/s worldwide.
  const StorageModelParams params;  // defaults are the paper's assumptions
  const StorageEstimate e = EstimateStorage(params);
  EXPECT_NEAR(e.mean_per_as_bits / 1e6, 333.0, 40.0);
  // Note: the paper divides by the count of *announcing* ASs from its BGP
  // snapshot (~50k prefixes across more ASs than DIMES sees); with the
  // DIMES AS count the proportional mean is ~333 Mbit. Both are "hundreds
  // of Mbit" — modest, which is the claim being reproduced.
  EXPECT_NEAR(e.update_traffic_bps / 1e9, 10.2, 0.5);
  EXPECT_NEAR(e.updates_per_second / 1e6, 5.787, 0.01);
  EXPECT_DOUBLE_EQ(e.total_storage_bits, 5e9 * 5 * 352);
}

TEST(StorageModelTest, ScalesLinearlyInGuids) {
  StorageModelParams params;
  params.total_guids = 1'000'000;
  const StorageEstimate small = EstimateStorage(params);
  params.total_guids = 2'000'000;
  const StorageEstimate big = EstimateStorage(params);
  EXPECT_DOUBLE_EQ(big.total_storage_bits, 2 * small.total_storage_bits);
  EXPECT_DOUBLE_EQ(big.update_traffic_bps, 2 * small.update_traffic_bps);
}

TEST(StorageModelTest, ScalesLinearlyInReplicas) {
  StorageModelParams params;
  params.replicas = 1;
  const StorageEstimate k1 = EstimateStorage(params);
  params.replicas = 5;
  const StorageEstimate k5 = EstimateStorage(params);
  EXPECT_DOUBLE_EQ(k5.total_storage_bits, 5 * k1.total_storage_bits);
  // Update *events* are unchanged; traffic grows with K messages.
  EXPECT_DOUBLE_EQ(k5.updates_per_second, k1.updates_per_second);
  EXPECT_DOUBLE_EQ(k5.update_traffic_bps, 5 * k1.update_traffic_bps);
}

TEST(StorageModelTest, PerAsDistributionSumsToTotal) {
  PrefixGenParams gen;
  gen.num_ases = 150;
  gen.seed = 3;
  const PrefixTable table = GeneratePrefixTable(gen);

  StorageModelParams params;
  params.num_ases = 150;
  params.total_guids = 1'000'000;
  const auto per_as = PerAsStorageBits(params, table);
  ASSERT_EQ(per_as.size(), 150u);
  const double total =
      std::accumulate(per_as.begin(), per_as.end(), 0.0);
  EXPECT_NEAR(total, double(params.total_guids) * params.replicas *
                         params.entry_bits,
              total * 1e-9);
  for (const double bits : per_as) EXPECT_GT(bits, 0.0);
}

TEST(StorageModelTest, PerAsProportionalToAddressShare) {
  PrefixGenParams gen;
  gen.num_ases = 100;
  gen.seed = 4;
  const PrefixTable table = GeneratePrefixTable(gen);
  StorageModelParams params;
  params.num_ases = 100;
  const auto per_as = PerAsStorageBits(params, table);
  // Pick two ASs with different shares and verify the ratio carries over.
  const double share0 = double(table.AddressesOwnedBy(0));
  const double share1 = double(table.AddressesOwnedBy(1));
  ASSERT_GT(share0, 0.0);
  ASSERT_GT(share1, 0.0);
  EXPECT_NEAR(per_as[0] / per_as[1], share0 / share1, 1e-9);
}

}  // namespace
}  // namespace dmap
