#include "core/cache.h"

#include <gtest/gtest.h>

#include "sim/environment.h"

namespace dmap {
namespace {

MappingEntry Entry(AsId as, std::uint64_t version = 1) {
  return MappingEntry{NaSet(NetworkAddress{as, 1}), version};
}

TEST(MappingCacheTest, HitAfterPut) {
  MappingCache cache(4, SimTime::Seconds(10));
  const Guid g = Guid::FromSequence(1);
  EXPECT_EQ(cache.Get(g, SimTime::Zero()), nullptr);
  cache.Put(g, Entry(7), SimTime::Zero());
  const MappingEntry* hit = cache.Get(g, SimTime::Seconds(1));
  ASSERT_NE(hit, nullptr);
  EXPECT_TRUE(hit->nas.AttachedTo(7));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(MappingCacheTest, TtlExpiry) {
  MappingCache cache(4, SimTime::Seconds(10));
  const Guid g = Guid::FromSequence(2);
  cache.Put(g, Entry(7), SimTime::Zero());
  EXPECT_NE(cache.Get(g, SimTime::Seconds(10)), nullptr);  // exactly at TTL
  EXPECT_EQ(cache.Get(g, SimTime::Seconds(10.001)), nullptr);
  EXPECT_EQ(cache.size(), 0u);  // expired entry evicted
}

TEST(MappingCacheTest, PutRefreshesTtlAndValue) {
  MappingCache cache(4, SimTime::Seconds(10));
  const Guid g = Guid::FromSequence(3);
  cache.Put(g, Entry(7), SimTime::Zero());
  cache.Put(g, Entry(9), SimTime::Seconds(8));
  const MappingEntry* hit = cache.Get(g, SimTime::Seconds(15));
  ASSERT_NE(hit, nullptr);  // fresh until t=18
  EXPECT_TRUE(hit->nas.AttachedTo(9));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(MappingCacheTest, LruEviction) {
  MappingCache cache(2, SimTime::Seconds(100));
  const Guid a = Guid::FromSequence(10), b = Guid::FromSequence(11),
             c = Guid::FromSequence(12);
  cache.Put(a, Entry(1), SimTime::Zero());
  cache.Put(b, Entry(2), SimTime::Zero());
  cache.Get(a, SimTime::Seconds(1));  // a now most recent
  cache.Put(c, Entry(3), SimTime::Seconds(2));  // evicts b
  EXPECT_NE(cache.Get(a, SimTime::Seconds(3)), nullptr);
  EXPECT_EQ(cache.Get(b, SimTime::Seconds(3)), nullptr);
  EXPECT_NE(cache.Get(c, SimTime::Seconds(3)), nullptr);
}

TEST(MappingCacheTest, Invalidate) {
  MappingCache cache(4, SimTime::Seconds(100));
  const Guid g = Guid::FromSequence(4);
  cache.Put(g, Entry(7), SimTime::Zero());
  EXPECT_TRUE(cache.Invalidate(g));
  EXPECT_FALSE(cache.Invalidate(g));
  EXPECT_EQ(cache.Get(g, SimTime::Seconds(1)), nullptr);
}

TEST(MappingCacheTest, EvictionOrderIsDeterministic) {
  // Eviction follows pure LRU recency — a function of the access sequence
  // alone, never of hash-table iteration order. Re-running the identical
  // sequence must evict the identical keys, and the survivors are exactly
  // the `capacity` most recently touched.
  for (int run = 0; run < 2; ++run) {
    MappingCache cache(3, SimTime::Seconds(1000));
    for (std::uint64_t i = 0; i < 8; ++i) {
      cache.Put(Guid::FromSequence(i), Entry(AsId(i)), SimTime::Zero());
    }
    // Touch 5 so the recency order is {5, 7, 6}, then insert 8: evicts 6.
    ASSERT_NE(cache.Get(Guid::FromSequence(5), SimTime::Seconds(1)), nullptr);
    cache.Put(Guid::FromSequence(8), Entry(8), SimTime::Seconds(2));
    EXPECT_EQ(cache.size(), 3u);
    for (const std::uint64_t survivor : {5ull, 7ull, 8ull}) {
      EXPECT_NE(cache.Get(Guid::FromSequence(survivor), SimTime::Seconds(3)),
                nullptr)
          << "run " << run << " survivor " << survivor;
    }
    for (const std::uint64_t evicted : {0ull, 1ull, 2ull, 3ull, 4ull, 6ull}) {
      EXPECT_EQ(cache.Get(Guid::FromSequence(evicted), SimTime::Seconds(3)),
                nullptr)
          << "run " << run << " evicted " << evicted;
    }
  }
}

TEST(MappingCacheTest, ZeroCapacityThrows) {
  EXPECT_THROW(MappingCache(0, SimTime::Seconds(1)), std::invalid_argument);
}

class CachingDMapTest : public testing::Test {
 protected:
  CachingDMapTest()
      : env_(BuildEnvironment(EnvironmentParams::Scaled(300, 51))),
        service_(env_.graph, env_.table, [] {
          DMapOptions o;
          o.k = 3;
          o.measure_update_latency = false;
          return o;
        }()) {}

  SimEnvironment env_;
  DMapService service_;
};

TEST_F(CachingDMapTest, SecondLookupServedFromCache) {
  CachingDMap cached(service_, 128, SimTime::Seconds(30));
  const Guid g = Guid::FromSequence(1);
  (void)service_.Insert(g, NetworkAddress{10, 1});

  const auto first = cached.Lookup(g, 200, SimTime::Zero());
  ASSERT_TRUE(first.result.found);
  EXPECT_FALSE(first.from_cache);

  const auto second = cached.Lookup(g, 200, SimTime::Seconds(1));
  ASSERT_TRUE(second.result.found);
  EXPECT_TRUE(second.from_cache);
  EXPECT_FALSE(second.stale);
  EXPECT_DOUBLE_EQ(second.result.latency_ms,
                   2.0 * env_.graph.IntraLatencyMs(200));
  EXPECT_LE(second.result.latency_ms, first.result.latency_ms);
}

TEST_F(CachingDMapTest, CacheIsPerAs) {
  CachingDMap cached(service_, 128, SimTime::Seconds(30));
  const Guid g = Guid::FromSequence(2);
  (void)service_.Insert(g, NetworkAddress{10, 1});
  cached.Lookup(g, 200, SimTime::Zero());
  // A different AS has its own cold cache.
  const auto other = cached.Lookup(g, 100, SimTime::Seconds(1));
  EXPECT_FALSE(other.from_cache);
}

TEST_F(CachingDMapTest, StalenessDetectedAfterMobility) {
  CachingDMap cached(service_, 128, SimTime::Seconds(30));
  const Guid g = Guid::FromSequence(3);
  (void)service_.Insert(g, NetworkAddress{10, 1});
  cached.Lookup(g, 200, SimTime::Zero());  // warm the cache

  cached.Update(g, NetworkAddress{20, 2});  // host moves

  const auto hit = cached.Lookup(g, 200, SimTime::Seconds(1));
  ASSERT_TRUE(hit.result.found);
  EXPECT_TRUE(hit.from_cache);
  EXPECT_TRUE(hit.stale);  // cache still points at AS 10
  EXPECT_TRUE(hit.result.nas.AttachedTo(10));

  // After the TTL the cache re-fetches the fresh mapping.
  const auto fresh = cached.Lookup(g, 200, SimTime::Seconds(40));
  EXPECT_FALSE(fresh.from_cache);
  EXPECT_TRUE(fresh.result.nas.AttachedTo(20));
}

TEST_F(CachingDMapTest, HitRateGrowsWithRepeats) {
  CachingDMap cached(service_, 1024, SimTime::Seconds(1000));
  for (int i = 0; i < 20; ++i) {
    (void)service_.Insert(Guid::FromSequence(std::uint64_t(100 + i)),
                          NetworkAddress{AsId(i), 1});
  }
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) {
      cached.Lookup(Guid::FromSequence(std::uint64_t(100 + i)), 250,
                    SimTime::Seconds(double(round)));
    }
  }
  EXPECT_EQ(cached.total_misses(), 20u);
  EXPECT_EQ(cached.total_hits(), 80u);
}

}  // namespace
}  // namespace dmap
