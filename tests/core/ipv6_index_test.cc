#include "core/ipv6_index.h"

#include <gtest/gtest.h>

#include <map>

namespace dmap {
namespace {

std::vector<AnnouncedIpv6Prefix> MakeTable(int count) {
  // Global-unicast-looking /48 and /32 allocations spread over 2000::/3.
  std::vector<AnnouncedIpv6Prefix> prefixes;
  for (int i = 0; i < count; ++i) {
    const std::uint64_t hi =
        0x2000000000000000ULL | (std::uint64_t(i) * 0x0000030000450000ULL);
    prefixes.push_back(AnnouncedIpv6Prefix{
        Cidr6(Ipv6Address(hi, 0), i % 3 == 0 ? 32 : 48),
        AsId(i % 11)});
  }
  return prefixes;
}

TEST(Ipv6IndexTest, SegmentsProjectPrefixSpans) {
  const auto prefix = Cidr6::Parse("2001:db8:42::/48");
  ASSERT_TRUE(prefix.has_value());
  const std::vector<AnnouncedIpv6Prefix> prefixes{{*prefix, 9}};
  const auto segments = SegmentsFromIpv6Prefixes(prefixes);
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0].base, 0x20010db800420000ULL);
  EXPECT_EQ(segments[0].size, std::uint64_t{1} << 16);
  EXPECT_EQ(segments[0].owner, 9u);
}

TEST(Ipv6IndexTest, TooLongPrefixThrows) {
  const auto prefix = Cidr6::Parse("2001:db8::/96");
  ASSERT_TRUE(prefix.has_value());
  const std::vector<AnnouncedIpv6Prefix> prefixes{{*prefix, 1}};
  EXPECT_THROW(SegmentsFromIpv6Prefixes(prefixes), std::invalid_argument);
}

TEST(Ipv6IndexTest, ResolutionLandsInsideAnnouncedPrefix) {
  const GuidHashFamily hashes(2, 3);
  const auto table = MakeTable(200);
  const Ipv6BucketIndex index(table, 64, hashes);
  for (int i = 0; i < 500; ++i) {
    const Guid g = Guid::FromSequence(std::uint64_t(i));
    for (int replica = 0; replica < 2; ++replica) {
      const auto r = index.Resolve(g, replica);
      // The address must fall inside exactly one announced prefix, owned
      // by the reported host.
      bool covered = false;
      for (const AnnouncedIpv6Prefix& p : table) {
        if (p.prefix.Contains(r.address)) {
          EXPECT_EQ(p.owner, r.host);
          covered = true;
        }
      }
      EXPECT_TRUE(covered) << r.address.ToString();
    }
  }
}

TEST(Ipv6IndexTest, DeterministicAcrossParticipants) {
  const GuidHashFamily h1(2, 9), h2(2, 9);
  const auto table = MakeTable(50);
  const Ipv6BucketIndex a(table, 16, h1), b(table, 16, h2);
  for (int i = 0; i < 100; ++i) {
    const Guid g = Guid::FromSequence(std::uint64_t(i));
    EXPECT_EQ(a.Resolve(g, 0).host, b.Resolve(g, 0).host);
    EXPECT_EQ(a.Resolve(g, 1).address, b.Resolve(g, 1).address);
  }
}

TEST(Ipv6IndexTest, LoadProportionalToBucketedSegments) {
  // All segments equal-sized: load should be roughly uniform per segment.
  std::vector<AnnouncedIpv6Prefix> table;
  for (int i = 0; i < 20; ++i) {
    table.push_back(AnnouncedIpv6Prefix{
        Cidr6(Ipv6Address(0x2000000000000000ULL +
                              std::uint64_t(i) * (1ULL << 40),
                          0),
              48),
        AsId(i)});
  }
  const GuidHashFamily hashes(1, 5);
  const Ipv6BucketIndex index(table, 20, hashes);
  std::map<AsId, int> counts;
  constexpr int kGuids = 20000;
  for (int i = 0; i < kGuids; ++i) {
    ++counts[index.Resolve(Guid::FromSequence(std::uint64_t(i)), 0).host];
  }
  EXPECT_EQ(counts.size(), 20u);
  for (const auto& [as, count] : counts) {
    EXPECT_NEAR(count, kGuids / 20, 150) << "AS " << as;
  }
}

}  // namespace
}  // namespace dmap
