#include "core/mapping_store.h"

#include <gtest/gtest.h>

namespace dmap {
namespace {

MappingEntry Entry(AsId as, std::uint64_t version) {
  return MappingEntry{NaSet(NetworkAddress{as, as * 10}), version};
}

TEST(MappingStoreTest, InsertAndLookup) {
  MappingStore store;
  const Guid g = Guid::FromSequence(1);
  EXPECT_EQ(store.Lookup(g), nullptr);
  EXPECT_TRUE(store.Upsert(g, Entry(5, 1)));
  const MappingEntry* found = store.Lookup(g);
  ASSERT_NE(found, nullptr);
  EXPECT_TRUE(found->nas.AttachedTo(5));
  EXPECT_EQ(store.size(), 1u);
}

TEST(MappingStoreTest, NewerVersionWins) {
  MappingStore store;
  const Guid g = Guid::FromSequence(2);
  store.Upsert(g, Entry(5, 1));
  EXPECT_TRUE(store.Upsert(g, Entry(6, 2)));
  EXPECT_TRUE(store.Lookup(g)->nas.AttachedTo(6));
}

TEST(MappingStoreTest, StaleUpdateRejected) {
  // The mobility race of Section III-D-2: an in-flight old update must not
  // clobber a newer mapping.
  MappingStore store;
  const Guid g = Guid::FromSequence(3);
  store.Upsert(g, Entry(6, 5));
  EXPECT_FALSE(store.Upsert(g, Entry(5, 4)));
  EXPECT_TRUE(store.Lookup(g)->nas.AttachedTo(6));
  EXPECT_EQ(store.Lookup(g)->version, 5u);
}

TEST(MappingStoreTest, EqualVersionIsIdempotentReapply) {
  MappingStore store;
  const Guid g = Guid::FromSequence(4);
  store.Upsert(g, Entry(6, 5));
  EXPECT_TRUE(store.Upsert(g, Entry(6, 5)));  // replay of the same update
  EXPECT_EQ(store.size(), 1u);
}

TEST(MappingStoreTest, EraseAndReinsert) {
  MappingStore store;
  const Guid g = Guid::FromSequence(5);
  store.Upsert(g, Entry(1, 1));
  EXPECT_TRUE(store.Erase(g));
  EXPECT_FALSE(store.Erase(g));
  EXPECT_EQ(store.Lookup(g), nullptr);
  EXPECT_TRUE(store.empty());
  // After an erase the version gate resets (fresh entry).
  EXPECT_TRUE(store.Upsert(g, Entry(2, 1)));
}

TEST(MappingStoreTest, StorageBitsAccounting) {
  MappingStore store;
  EXPECT_EQ(store.StorageBits(), 0u);
  for (int i = 0; i < 10; ++i) {
    store.Upsert(Guid::FromSequence(std::uint64_t(i)), Entry(1, 1));
  }
  EXPECT_EQ(store.StorageBits(), 10u * 352u);
}

TEST(MappingStoreTest, ForEachVisitsAll) {
  MappingStore store;
  for (int i = 0; i < 25; ++i) {
    store.Upsert(Guid::FromSequence(std::uint64_t(i)), Entry(AsId(i), 1));
  }
  int count = 0;
  store.ForEach([&](const Guid& guid, const MappingEntry& entry) {
    (void)guid;
    EXPECT_EQ(entry.version, 1u);
    ++count;
  });
  EXPECT_EQ(count, 25);
}

TEST(MappingStoreTest, ManyGuidsNoInterference) {
  MappingStore store;
  constexpr int kCount = 10000;
  for (int i = 0; i < kCount; ++i) {
    store.Upsert(Guid::FromSequence(std::uint64_t(i)),
                 Entry(AsId(i % 100), std::uint64_t(i)));
  }
  EXPECT_EQ(store.size(), std::size_t(kCount));
  for (int i = 0; i < kCount; i += 997) {
    const MappingEntry* e = store.Lookup(Guid::FromSequence(std::uint64_t(i)));
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->version, std::uint64_t(i));
    EXPECT_TRUE(e->nas.AttachedTo(AsId(i % 100)));
  }
}

}  // namespace
}  // namespace dmap
