#include "core/as_hashing.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace dmap {
namespace {

TEST(AsHashResolverTest, UniformResolveStaysInRange) {
  const GuidHashFamily hashes(5, 1);
  const AsHashResolver resolver(hashes, 1000);
  for (int i = 0; i < 1000; ++i) {
    const Guid g = Guid::FromSequence(std::uint64_t(i));
    for (int k = 0; k < 5; ++k) {
      EXPECT_LT(resolver.Resolve(g, k), 1000u);
    }
  }
}

TEST(AsHashResolverTest, DeterministicAcrossInstances) {
  const GuidHashFamily h1(3, 9), h2(3, 9);
  const AsHashResolver a(h1, 500), b(h2, 500);
  for (int i = 0; i < 100; ++i) {
    const Guid g = Guid::FromSequence(std::uint64_t(i));
    for (int k = 0; k < 3; ++k) {
      EXPECT_EQ(a.Resolve(g, k), b.Resolve(g, k));
    }
  }
}

TEST(AsHashResolverTest, UniformLoadIsBalancedByCount) {
  const GuidHashFamily hashes(1, 2);
  constexpr std::uint32_t kAses = 50;
  const AsHashResolver resolver(hashes, kAses);
  std::vector<int> counts(kAses, 0);
  constexpr int kGuids = 100000;
  for (int i = 0; i < kGuids; ++i) {
    ++counts[resolver.Resolve(Guid::FromSequence(std::uint64_t(i)), 0)];
  }
  const double expected = double(kGuids) / kAses;
  double chi2 = 0;
  for (const int c : counts) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  EXPECT_LT(chi2, 85.4);  // 99.9% critical value, 49 dof
}

TEST(AsHashResolverTest, WeightedVariantFollowsWeights) {
  const GuidHashFamily hashes(1, 3);
  const AsHashResolver resolver(hashes,
                                std::vector<double>{1.0, 3.0, 6.0});
  std::vector<int> counts(3, 0);
  constexpr int kGuids = 100000;
  for (int i = 0; i < kGuids; ++i) {
    ++counts[resolver.Resolve(Guid::FromSequence(std::uint64_t(i)), 0)];
  }
  EXPECT_NEAR(counts[0], kGuids * 0.1, 5 * std::sqrt(kGuids * 0.1));
  EXPECT_NEAR(counts[1], kGuids * 0.3, 5 * std::sqrt(kGuids * 0.3));
  EXPECT_NEAR(counts[2], kGuids * 0.6, 5 * std::sqrt(kGuids * 0.6));
}

TEST(AsHashResolverTest, ZeroWeightAsNeverChosen) {
  const GuidHashFamily hashes(1, 4);
  const AsHashResolver resolver(hashes,
                                std::vector<double>{1.0, 0.0, 1.0});
  for (int i = 0; i < 5000; ++i) {
    EXPECT_NE(resolver.Resolve(Guid::FromSequence(std::uint64_t(i)), 0), 1u);
  }
}

TEST(AsHashResolverTest, ReplicasAreIndependent) {
  const GuidHashFamily hashes(2, 5);
  const AsHashResolver resolver(hashes, 10000);
  int collisions = 0;
  for (int i = 0; i < 1000; ++i) {
    const Guid g = Guid::FromSequence(std::uint64_t(i));
    if (resolver.Resolve(g, 0) == resolver.Resolve(g, 1)) ++collisions;
  }
  EXPECT_LT(collisions, 5);
}

TEST(AsHashResolverTest, ValidationErrors) {
  const GuidHashFamily hashes(1, 6);
  EXPECT_THROW(AsHashResolver(hashes, 0), std::invalid_argument);
  EXPECT_THROW(AsHashResolver(hashes, std::vector<double>{}),
               std::invalid_argument);
  EXPECT_THROW(AsHashResolver(hashes, std::vector<double>{1.0, -1.0}),
               std::invalid_argument);
  EXPECT_THROW(AsHashResolver(hashes, std::vector<double>{0.0, 0.0}),
               std::invalid_argument);
}

TEST(AsHashResolverTest, ResolveAllReturnsK) {
  const GuidHashFamily hashes(4, 7);
  const AsHashResolver resolver(hashes, 100);
  EXPECT_EQ(resolver.ResolveAll(Guid::FromSequence(1)).size(), 4u);
  EXPECT_EQ(resolver.k(), 4);
  EXPECT_EQ(resolver.num_ases(), 100u);
}

}  // namespace
}  // namespace dmap
