#include "core/dmap_service.h"

#include <gtest/gtest.h>

#include <limits>
#include <numeric>
#include <tuple>
#include <stdexcept>
#include <string>

#include "obs/metrics_registry.h"
#include "obs/probe_trace.h"
#include "sim/environment.h"

namespace dmap {
namespace {

class DMapServiceTest : public testing::Test {
 protected:
  DMapServiceTest() : env_(BuildEnvironment(EnvironmentParams::Scaled(300))) {}

  DMapOptions Options(int k = 3) {
    DMapOptions o;
    o.k = k;
    return o;
  }

  SimEnvironment env_;
};

TEST_F(DMapServiceTest, InsertThenLookupFinds) {
  DMapService service(env_.graph, env_.table, Options());
  const Guid g = Guid::FromSequence(1);
  const UpdateResult up = service.Insert(g, NetworkAddress{10, 1});
  EXPECT_EQ(up.replicas.size(), 3u);
  EXPECT_GT(up.latency_ms, 0.0);
  EXPECT_EQ(up.version, 1u);

  const LookupResult r = service.Lookup(g, 200);
  ASSERT_TRUE(r.found);
  EXPECT_TRUE(r.nas.AttachedTo(10));
  EXPECT_GT(r.latency_ms, 0.0);
  EXPECT_GE(r.attempts, 1);
}

TEST_F(DMapServiceTest, LookupOfUnknownGuidMisses) {
  DMapService service(env_.graph, env_.table, Options());
  const LookupResult r = service.Lookup(Guid::FromSequence(99), 5);
  EXPECT_FALSE(r.found);
  // The querier paid for probing every replica.
  EXPECT_EQ(r.attempts, 3);
  EXPECT_GT(r.latency_ms, 0.0);
}

TEST_F(DMapServiceTest, ReplicasStoredAtResolvedHosts) {
  DMapService service(env_.graph, env_.table, Options());
  const Guid g = Guid::FromSequence(2);
  const UpdateResult up = service.Insert(g, NetworkAddress{10, 1});
  for (const AsId host : up.replicas) {
    const MappingEntry* e = service.StoreLookup(host, g);
    ASSERT_NE(e, nullptr);
    EXPECT_TRUE(e->nas.AttachedTo(10));
  }
  // Consistent with the resolver's deterministic placement.
  const auto resolutions = service.resolver().ResolveAll(g);
  for (std::size_t i = 0; i < resolutions.size(); ++i) {
    EXPECT_EQ(up.replicas[i], resolutions[i].host);
  }
}

TEST_F(DMapServiceTest, LocalReplicaStoredAtAttachmentAs) {
  DMapService service(env_.graph, env_.table, Options());
  const Guid g = Guid::FromSequence(3);
  (void)service.Insert(g, NetworkAddress{42, 1});
  EXPECT_NE(service.StoreLookup(42, g), nullptr);
}

TEST_F(DMapServiceTest, LocalLookupIsFast) {
  // A querier in the GUID's own AS resolves in one intra-AS round trip.
  DMapService service(env_.graph, env_.table, Options());
  const Guid g = Guid::FromSequence(4);
  (void)service.Insert(g, NetworkAddress{42, 1});
  const LookupResult r = service.Lookup(g, 42);
  ASSERT_TRUE(r.found);
  EXPECT_TRUE(r.served_locally);
  EXPECT_DOUBLE_EQ(r.latency_ms, 2.0 * env_.graph.IntraLatencyMs(42));
}

TEST_F(DMapServiceTest, LocalReplicaDisabledFallsBackToGlobal) {
  DMapOptions options = Options();
  options.local_replica = false;
  DMapService service(env_.graph, env_.table, options);
  const Guid g = Guid::FromSequence(4);
  (void)service.Insert(g, NetworkAddress{42, 1});
  const LookupResult r = service.Lookup(g, 42);
  ASSERT_TRUE(r.found);
  EXPECT_FALSE(r.served_locally);
}

TEST_F(DMapServiceTest, LookupLatencyEqualsBestReplicaRtt) {
  DMapOptions options = Options();
  options.local_replica = false;
  DMapService service(env_.graph, env_.table, options);
  const Guid g = Guid::FromSequence(5);
  const UpdateResult up = service.Insert(g, NetworkAddress{10, 1});

  const AsId querier = 123;
  double best = 1e18;
  for (const AsId host : up.replicas) {
    best = std::min(best, service.oracle().RttMs(querier, host));
  }
  const LookupResult r = service.Lookup(g, querier);
  ASSERT_TRUE(r.found);
  EXPECT_DOUBLE_EQ(r.latency_ms, best);
  EXPECT_EQ(r.attempts, 1);
}

TEST_F(DMapServiceTest, UpdateLatencyIsMaxReplicaRtt) {
  DMapOptions options = Options();
  options.local_replica = false;
  options.write_quorum = 1;  // legacy mode: done when every replica acks
  DMapService service(env_.graph, env_.table, options);
  const Guid g = Guid::FromSequence(6);
  const UpdateResult up = service.Insert(g, NetworkAddress{10, 1});
  double worst = 0;
  for (const AsId host : up.replicas) {
    worst = std::max(worst, service.oracle().RttMs(10, host));
  }
  EXPECT_DOUBLE_EQ(up.latency_ms, worst);
}

TEST_F(DMapServiceTest, UpdateLatencyIsMajorityAckByDefault) {
  DMapOptions options = Options();
  options.local_replica = false;
  DMapService service(env_.graph, env_.table, options);
  const Guid g = Guid::FromSequence(6);
  const UpdateResult up = service.Insert(g, NetworkAddress{10, 1});
  std::vector<double> acks;
  for (const AsId host : up.replicas) {
    acks.push_back(service.oracle().RttMs(10, host));
  }
  std::sort(acks.begin(), acks.end());
  const int w = ResolveQuorum(0, int(acks.size()));
  ASSERT_GE(w, 2);  // K=5 globals: majority is 3
  EXPECT_DOUBLE_EQ(up.latency_ms, acks[std::size_t(w - 1)]);
  EXPECT_EQ(up.status, ResolverStatus::kOk);
}

TEST_F(DMapServiceTest, UpdateFailsQuorumWhenTooFewReplicasReachable) {
  DMapOptions options = Options();
  options.local_replica = false;
  DMapService service(env_.graph, env_.table, options);
  const Guid g = Guid::FromSequence(6);
  const UpdateResult seeded = service.Insert(g, NetworkAddress{10, 1});
  // Fail all but one replica host: 1 ack < majority of 5.
  std::vector<AsId> down(seeded.replicas.begin() + 1,
                         seeded.replicas.end());
  service.SetFailedAses(down);
  const UpdateResult up = service.Update(g, NetworkAddress{10, 2});
  EXPECT_EQ(up.status, ResolverStatus::kQuorumFailed);
  // The surviving replica still applied the write: no silent rollback,
  // read-repair converges the rest once they heal.
  EXPECT_GT(up.latency_ms, 0.0);
}

TEST_F(DMapServiceTest, MobilityUpdateMovesMapping) {
  DMapService service(env_.graph, env_.table, Options());
  const Guid g = Guid::FromSequence(7);
  (void)service.Insert(g, NetworkAddress{10, 1});
  const UpdateResult up = service.Update(g, NetworkAddress{20, 2});
  EXPECT_EQ(up.version, 2u);

  const LookupResult r = service.Lookup(g, 100);
  ASSERT_TRUE(r.found);
  EXPECT_TRUE(r.nas.AttachedTo(20));
  EXPECT_FALSE(r.nas.AttachedTo(10));
  // Local copy moved: old AS no longer stores it (unless it is a replica).
  bool old_is_replica = false;
  for (const AsId host : up.replicas) old_is_replica |= host == 10;
  if (!old_is_replica) {
    EXPECT_EQ(service.StoreLookup(10, g), nullptr);
  }
  EXPECT_NE(service.StoreLookup(20, g), nullptr);
}

TEST_F(DMapServiceTest, UpdateOfUnknownGuidThrows) {
  DMapService service(env_.graph, env_.table, Options());
  EXPECT_THROW(service.Update(Guid::FromSequence(8), NetworkAddress{1, 1}),
               std::invalid_argument);
}

TEST_F(DMapServiceTest, MultiHomingAddsNa) {
  DMapService service(env_.graph, env_.table, Options());
  const Guid g = Guid::FromSequence(9);
  (void)service.Insert(g, NetworkAddress{10, 1});
  (void)service.AddAttachment(g, NetworkAddress{20, 2});
  const LookupResult r = service.Lookup(g, 100);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.nas.size(), 2);
  EXPECT_TRUE(r.nas.AttachedTo(10));
  EXPECT_TRUE(r.nas.AttachedTo(20));
  // Duplicate attachment is an error.
  EXPECT_THROW(service.AddAttachment(g, NetworkAddress{20, 2}),
               std::invalid_argument);
}

TEST_F(DMapServiceTest, DeregisterRemovesEverywhere) {
  DMapService service(env_.graph, env_.table, Options());
  const Guid g = Guid::FromSequence(10);
  (void)service.Insert(g, NetworkAddress{10, 1});
  EXPECT_GT(service.total_stored_entries(), 0u);
  EXPECT_TRUE(service.Deregister(g));
  EXPECT_FALSE(service.Deregister(g));
  EXPECT_EQ(service.total_stored_entries(), 0u);
  EXPECT_FALSE(service.Lookup(g, 100).found);
}

TEST_F(DMapServiceTest, FailedReplicaCostsTimeoutAndFallsThrough) {
  DMapOptions options = Options();
  options.local_replica = false;
  options.failure_timeout_ms = 500.0;
  DMapService service(env_.graph, env_.table, options);
  const Guid g = Guid::FromSequence(11);
  const UpdateResult up = service.Insert(g, NetworkAddress{10, 1});

  // Fail the best replica for querier 77.
  const auto plan = service.ProbePlan(g, 77);
  service.SetFailedAses({plan[0].first});
  const LookupResult r = service.Lookup(g, 77);
  if (plan[1].first != plan[0].first) {
    ASSERT_TRUE(r.found);
    EXPECT_EQ(r.attempts, 2);
    EXPECT_DOUBLE_EQ(r.latency_ms, 500.0 + plan[1].second);
  }
  (void)up;
}

TEST_F(DMapServiceTest, AllReplicasFailedMeansNotFound) {
  DMapOptions options = Options();
  options.local_replica = false;
  DMapService service(env_.graph, env_.table, options);
  const Guid g = Guid::FromSequence(12);
  const UpdateResult up = service.Insert(g, NetworkAddress{10, 1});
  service.SetFailedAses(up.replicas);
  const LookupResult r = service.Lookup(g, 77);
  EXPECT_FALSE(r.found);
  EXPECT_DOUBLE_EQ(r.latency_ms,
                   options.failure_timeout_ms * double(options.k));
  // Recovery restores resolution.
  service.SetFailedAses({});
  EXPECT_TRUE(service.Lookup(g, 77).found);
}

TEST_F(DMapServiceTest, LocalReplicaSurvivesGlobalFailures) {
  // Section III-D-3 + III-C: even with every global replica down, a
  // same-AS querier resolves locally.
  DMapService service(env_.graph, env_.table, Options());
  const Guid g = Guid::FromSequence(13);
  const UpdateResult up = service.Insert(g, NetworkAddress{42, 1});
  std::vector<AsId> failed = up.replicas;
  // Keep the attachment AS itself alive.
  std::erase(failed, 42u);
  service.SetFailedAses(failed);
  const LookupResult r = service.Lookup(g, 42);
  ASSERT_TRUE(r.found);
  EXPECT_TRUE(r.served_locally);
}

TEST_F(DMapServiceTest, HopCountSelectionStillResolves) {
  DMapOptions options = Options();
  options.selection = ReplicaSelection::kFewestHops;
  DMapService service(env_.graph, env_.table, options);
  const Guid g = Guid::FromSequence(14);
  (void)service.Insert(g, NetworkAddress{10, 1});
  const LookupResult r = service.Lookup(g, 200);
  ASSERT_TRUE(r.found);
  // The chosen replica has the minimum hop count among replicas.
  const auto resolutions = service.resolver().ResolveAll(g);
  std::uint32_t best_hops = ~0u;
  for (const auto& res : resolutions) {
    best_hops = std::min(best_hops, service.oracle().Hops(200, res.host));
  }
  if (!r.served_locally) {
    EXPECT_EQ(service.oracle().Hops(200, r.serving_as), best_hops);
  }
}

TEST_F(DMapServiceTest, LookupWithStaleViewRecoversViaOtherReplicas) {
  DMapOptions options = Options();
  options.local_replica = false;
  DMapService service(env_.graph, env_.table, options);
  const Guid g = Guid::FromSequence(15);
  (void)service.Insert(g, NetworkAddress{10, 1});
  // A fully consistent view behaves identically to Lookup().
  const LookupResult consistent = service.LookupWithView(g, 200, env_.table);
  const LookupResult direct = service.Lookup(g, 200);
  EXPECT_EQ(consistent.found, direct.found);
  EXPECT_DOUBLE_EQ(consistent.latency_ms, direct.latency_ms);
}

TEST_F(DMapServiceTest, RehomeAfterChurnRestoresFirstTryLookups) {
  DMapOptions options = Options();
  options.local_replica = false;
  DMapService service(env_.graph, env_.table, options);
  const Guid g = Guid::FromSequence(16);
  (void)service.Insert(g, NetworkAddress{10, 1});
  // Rehome against an unchanged table is a no-op.
  EXPECT_EQ(service.Rehome(g), 0);
  EXPECT_EQ(service.Rehome(Guid::FromSequence(999)), 0);  // unknown GUID
}

TEST_F(DMapServiceTest, StaleViewPlusFailuresCompose) {
  // Churn and router failure at once: the probe walk must charge a miss
  // RTT for displaced replicas and a timeout for dead ones, in plan order.
  DMapOptions options = Options(5);
  options.local_replica = false;
  options.failure_timeout_ms = 400.0;
  DMapService service(env_.graph, env_.table, options);
  const Guid g = Guid::FromSequence(77);
  (void)service.Insert(g, NetworkAddress{10, 1});

  // Fail the best replica; lookups must still resolve via the rest even
  // when the view is the (consistent) table — then verify latency
  // accounting includes both penalty types when we also displace storage
  // by deregistering and re-inserting nothing (miss at every replica).
  const auto plan = service.ProbePlan(g, 99);
  service.SetFailedAses({plan[0].first});
  const LookupResult ok = service.LookupWithView(g, 99, env_.table);
  if (plan[1].first != plan[0].first) {
    ASSERT_TRUE(ok.found);
    EXPECT_DOUBLE_EQ(ok.latency_ms, 400.0 + plan[1].second);
  }

  // Unknown GUID with one dead replica: all K probed, one timeout + the
  // remaining (K-1) miss round trips.
  const Guid unknown = Guid::FromSequence(78);
  const auto unknown_plan = service.ProbePlan(unknown, 99);
  service.SetFailedAses({unknown_plan[0].first});
  const LookupResult miss = service.LookupWithView(unknown, 99, env_.table);
  EXPECT_FALSE(miss.found);
  double expected = 400.0;
  for (std::size_t i = 1; i < unknown_plan.size(); ++i) {
    if (unknown_plan[i].first == unknown_plan[0].first) {
      expected += 400.0;  // duplicate replica host also counts as failed
    } else {
      expected += unknown_plan[i].second;
    }
  }
  EXPECT_DOUBLE_EQ(miss.latency_ms, expected);
}

TEST_F(DMapServiceTest, GuidsStoredInFindsPlacedMappings) {
  DMapOptions options = Options();
  options.local_replica = false;
  DMapService service(env_.graph, env_.table, options);
  const Guid g = Guid::FromSequence(30);
  (void)service.Insert(g, NetworkAddress{10, 1});

  // Each replica must be discoverable at its host via the prefix covering
  // its stored address.
  for (const HostResolution& r : service.resolver().ResolveAll(g)) {
    const auto record = env_.table.Lookup(r.stored_address);
    ASSERT_TRUE(record.has_value());
    const auto guids = service.GuidsStoredIn(r.host, record->prefix);
    EXPECT_NE(std::find(guids.begin(), guids.end(), g), guids.end())
        << "replica at AS " << r.host << " not indexed by "
        << record->prefix.ToString();
  }
  // A prefix covering none of the stored addresses yields nothing. Use a
  // reserved (never-announced) block.
  EXPECT_TRUE(service
                  .GuidsStoredIn(service.resolver().ResolveAll(g)[0].host,
                                 Cidr(Ipv4Address::FromOctets(10, 0, 0, 0), 8))
                  .empty());
}

TEST_F(DMapServiceTest, WithdrawalRepairViaGuidsStoredInAndRehome) {
  // Closed-form Section III-D-1 withdrawal: enumerate the mappings stored
  // under a prefix, withdraw it, re-home them, and verify first-try
  // lookups continue.
  DMapOptions options = Options();
  options.local_replica = false;
  // The service resolves against env_.table by reference.
  DMapService service(env_.graph, env_.table, options);
  for (int i = 0; i < 200; ++i) {
    (void)service.Insert(Guid::FromSequence(std::uint64_t(1000 + i)),
                         NetworkAddress{AsId(i % env_.graph.num_nodes()), 1});
  }

  // Find a populated prefix.
  Cidr victim;
  AsId owner = kInvalidAs;
  std::vector<Guid> affected;
  for (const PrefixRecord& record : env_.table.AllPrefixes()) {
    affected = service.GuidsStoredIn(record.owner, record.prefix);
    if (!affected.empty()) {
      victim = record.prefix;
      owner = record.owner;
      break;
    }
  }
  ASSERT_NE(owner, kInvalidAs);

  ASSERT_TRUE(env_.table.Withdraw(victim));
  int moved = 0;
  for (const Guid& g : affected) moved += service.Rehome(g);
  EXPECT_GT(moved, 0);

  for (const Guid& g : affected) {
    const LookupResult r = service.Lookup(g, 123);
    ASSERT_TRUE(r.found);
    EXPECT_EQ(r.attempts, 1);
  }
  // Restore the table for other tests sharing the fixture (none do, but
  // keep the environment consistent).
  env_.table.Announce(victim, owner);
}

TEST_F(DMapServiceTest, MeasureUpdateLatencyOffReturnsMinusOne) {
  DMapOptions options = Options();
  options.measure_update_latency = false;
  DMapService service(env_.graph, env_.table, options);
  const UpdateResult up =
      service.Insert(Guid::FromSequence(17), NetworkAddress{10, 1});
  EXPECT_DOUBLE_EQ(up.latency_ms, -1.0);
}

TEST_F(DMapServiceTest, InvalidArgumentsThrow) {
  DMapService service(env_.graph, env_.table, Options());
  EXPECT_THROW(service.Insert(Guid::FromSequence(18),
                              NetworkAddress{env_.graph.num_nodes(), 1}),
               std::invalid_argument);
  EXPECT_THROW(service.Lookup(Guid::FromSequence(18),
                              env_.graph.num_nodes()),
               std::invalid_argument);
  DMapOptions bad;
  bad.k = 0;
  EXPECT_THROW(DMapService(env_.graph, env_.table, bad),
               std::invalid_argument);
}

// Property sweep: for every K, lookups of inserted GUIDs always succeed and
// larger K never increases the per-query latency (same seed, same hash
// family prefix — h_1..h_k is a prefix of h_1..h_{k+1}).
class DMapServiceKSweep : public DMapServiceTest,
                          public testing::WithParamInterface<int> {};

TEST_P(DMapServiceKSweep, AllLookupsResolve) {
  DMapOptions options = Options(GetParam());
  options.local_replica = false;
  DMapService service(env_.graph, env_.table, options);
  for (int i = 0; i < 50; ++i) {
    (void)service.Insert(Guid::FromSequence(std::uint64_t(i)),
                         NetworkAddress{AsId(i % env_.graph.num_nodes()), 1});
  }
  for (int i = 0; i < 50; ++i) {
    const LookupResult r = service.Lookup(Guid::FromSequence(std::uint64_t(i)),
                                          AsId((i * 7) % 300));
    ASSERT_TRUE(r.found) << "guid " << i;
    EXPECT_EQ(r.attempts, 1);
  }
}

INSTANTIATE_TEST_SUITE_P(KValues, DMapServiceKSweep,
                         testing::Values(1, 2, 3, 5, 8));

TEST_F(DMapServiceTest, LargerKNeverHurtsLatency) {
  // With the same hash seed, the replica set for K is a prefix of the set
  // for K+1, so min-RTT selection can only improve.
  std::vector<double> latencies;
  for (const int k : {1, 3, 5}) {
    DMapOptions options = Options(k);
    options.local_replica = false;
    DMapService service(env_.graph, env_.table, options);
    const Guid g = Guid::FromSequence(20);
    (void)service.Insert(g, NetworkAddress{10, 1});
    latencies.push_back(service.Lookup(g, 250).latency_ms);
  }
  EXPECT_LE(latencies[1], latencies[0]);
  EXPECT_LE(latencies[2], latencies[1]);
}

TEST_F(DMapServiceTest, OptionsValidationNamesTheBadField) {
  const auto expect_rejects = [&](DMapOptions options,
                                  const std::string& field) {
    try {
      DMapService service(env_.graph, env_.table, options);
      FAIL() << "expected invalid_argument for " << field;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(field), std::string::npos)
          << e.what();
    }
  };
  DMapOptions bad_k = Options();
  bad_k.k = 0;
  expect_rejects(bad_k, "k");
  DMapOptions bad_m = Options();
  bad_m.max_hashes = 0;
  expect_rejects(bad_m, "max_hashes");
  DMapOptions bad_timeout = Options();
  bad_timeout.failure_timeout_ms = -1.0;
  expect_rejects(bad_timeout, "failure_timeout_ms");
  DMapOptions nan_timeout = Options();
  nan_timeout.failure_timeout_ms =
      std::numeric_limits<double>::quiet_NaN();
  expect_rejects(nan_timeout, "failure_timeout_ms");
}

TEST_F(DMapServiceTest, MetricsAccountInsertsAndLookups) {
  DMapService service(env_.graph, env_.table, Options(3));
  MetricsRegistry registry;
  service.SetMetrics(&registry);
  (void)service.Insert(Guid::FromSequence(1), NetworkAddress{10, 1});
  (void)service.Lookup(Guid::FromSequence(1), 200);  // hit
        (void)service.Lookup(Guid::FromSequence(2), 200);  // miss: probes all 3
              std::uint64_t inserts = 0, lookups = 0, hits = 0, misses = 0, probes = 0;
  std::uint64_t latency_count = 0;
  for (const CounterSnapshot& c : registry.Snapshot().counters) {
    if (c.name == "dmap.inserts") inserts = c.value;
    if (c.name == "dmap.lookups") lookups = c.value;
    if (c.name == "dmap.lookup_hits") hits = c.value;
    if (c.name == "dmap.lookup_misses") misses = c.value;
    if (c.name == "dmap.probes") probes = c.value;
  }
  for (const HistogramSnapshot& h : registry.Snapshot().histograms) {
    if (h.name == "dmap.lookup_latency_ms") latency_count = h.count;
  }
  EXPECT_EQ(inserts, 1u);
  EXPECT_EQ(lookups, 2u);
  EXPECT_EQ(hits, 1u);
  EXPECT_EQ(misses, 1u);
  EXPECT_GE(probes, 4u);  // 1 hit probe + 3 full-walk misses
  EXPECT_EQ(latency_count, 2u);
}

TEST_F(DMapServiceTest, TracerCapturesProbeWalkAndFailures) {
  DMapOptions options = Options(3);
  options.local_replica = false;
  DMapService service(env_.graph, env_.table, options);
  ProbeTracer tracer(1, 1);
  service.SetTracer(&tracer);

  const Guid g = Guid::FromSequence(5);
  const UpdateResult up = service.Insert(g, NetworkAddress{10, 1});
  // Fail the preferred (first-probed) replica: the trace must show the
  // timeout fall-through before the eventual hit.
  service.SetFailedAses({service.Lookup(g, 200).serving_as});
  const LookupResult r = service.Lookup(g, 200);
  ASSERT_TRUE(r.found);
  ASSERT_TRUE(r.trace.has_value());
  const ProbeTrace& trace = *r.trace;
  EXPECT_EQ(trace.guid_fp, g.Fingerprint64());
  EXPECT_GE(trace.attempts, 2);
  ASSERT_GE(trace.probes.size(), 2u);
  EXPECT_EQ(trace.probes.front().outcome, ProbeOutcome::kFailed);
  EXPECT_DOUBLE_EQ(trace.probes.front().rtt_ms,
                   options.failure_timeout_ms);
  EXPECT_EQ(trace.probes.back().outcome, ProbeOutcome::kHit);
  EXPECT_GT(up.hash_evaluations, 0);
  // Drained traces include the earlier unfailed lookup plus this one.
  EXPECT_EQ(tracer.Drain().size(), 2u);
}

TEST_F(DMapServiceTest, StoreShardsOptionValidates) {
  DMapOptions bad = Options();
  bad.store_shards = -1;
  EXPECT_THROW(DMapService(env_.graph, env_.table, bad),
               std::invalid_argument);
  bad.store_shards = 100000;
  EXPECT_THROW(DMapService(env_.graph, env_.table, bad),
               std::invalid_argument);
}

TEST_F(DMapServiceTest, ResultsAreIdenticalForEveryShardCount) {
  // The determinism contract extended to sharding: every externally
  // observable result — lookup outcomes, per-AS store sizes, entry totals,
  // stored-GUID enumeration — is byte-identical for any store_shards value.
  struct Observed {
    std::vector<std::size_t> sizes;
    std::size_t total = 0;
    std::vector<std::tuple<bool, double, int, AsId>> lookups;
    std::vector<Guid> enumerated;
  };
  auto run = [&](int shards) {
    DMapOptions options = Options(5);
    options.store_shards = shards;
    DMapService service(env_.graph, env_.table, options);
    for (std::uint64_t i = 0; i < 200; ++i) {
      (void)service.Insert(Guid::FromSequence(i),
                           NetworkAddress{AsId(i % 250), 1});
    }
    for (std::uint64_t i = 0; i < 50; ++i) {
      (void)service.Update(Guid::FromSequence(i),
                           NetworkAddress{AsId((i + 7) % 250), 1});
    }
    for (std::uint64_t i = 0; i < 25; ++i) {
      (void)service.Deregister(Guid::FromSequence(i * 3));
    }
    service.RefreshReadSnapshots();
    Observed obs;
    obs.sizes = service.StoreSizes();
    obs.total = service.total_stored_entries();
    for (std::uint64_t i = 0; i < 220; ++i) {
      const LookupResult r =
          service.Lookup(Guid::FromSequence(i), AsId(i % 299));
      obs.lookups.emplace_back(r.found, r.latency_ms, r.attempts,
                               r.serving_as);
    }
    obs.enumerated = service.GuidsStoredIn(
        42, Cidr(Ipv4Address::FromOctets(0, 0, 0, 0), 0));
    return obs;
  };
  const Observed baseline = run(1);
  EXPECT_GT(baseline.total, 0u);
  for (const int shards : {4, 16}) {
    const Observed sharded = run(shards);
    EXPECT_EQ(sharded.sizes, baseline.sizes) << "shards=" << shards;
    EXPECT_EQ(sharded.total, baseline.total) << "shards=" << shards;
    EXPECT_EQ(sharded.lookups, baseline.lookups) << "shards=" << shards;
    EXPECT_EQ(sharded.enumerated, baseline.enumerated)
        << "shards=" << shards;
  }
}

TEST_F(DMapServiceTest, RefreshReadSnapshotsFreshensStoreAndResolver) {
  DMapOptions options = Options();
  DMapService service(env_.graph, env_.table, options);
  (void)service.Insert(Guid::FromSequence(1), NetworkAddress{10, 1});
  EXPECT_FALSE(service.store().snapshots_fresh());
  service.RefreshReadSnapshots();
  EXPECT_TRUE(service.store().snapshots_fresh());
  EXPECT_TRUE(service.resolver().snapshot_fresh());
  // Reads served from the fresh snapshots agree with the mutable maps.
  EXPECT_NE(service.StoreLookup(service.Lookup(Guid::FromSequence(1), 200)
                                    .serving_as,
                                Guid::FromSequence(1)),
            nullptr);
}

}  // namespace
}  // namespace dmap
