#include "core/hole_resolver.h"

#include <gtest/gtest.h>

#include "bgp/prefix_gen.h"
#include "common/rng.h"

namespace dmap {
namespace {

Cidr C(const std::string& text) {
  Cidr c;
  EXPECT_TRUE(Cidr::Parse(text, &c)) << text;
  return c;
}

TEST(HoleResolverTest, FirstHashHitWhenFullyAnnounced) {
  PrefixTable table;
  table.Announce(C("0.0.0.0/1"), 1);
  table.Announce(C("128.0.0.0/1"), 2);
  const GuidHashFamily hashes(3, 1);
  const HoleResolver resolver(hashes, table);
  const Guid g = Guid::FromSequence(7);
  for (int i = 0; i < 3; ++i) {
    const HostResolution r = resolver.Resolve(g, i);
    EXPECT_EQ(r.hash_count, 1);
    EXPECT_FALSE(r.used_nearest);
    EXPECT_EQ(r.stored_address, r.hashed_address);
    EXPECT_EQ(r.host, hashes.Hash(g, i).value() < 0x80000000u ? 1u : 2u);
  }
}

TEST(HoleResolverTest, RehashesPastHoles) {
  // Only the top half is announced: ~50% hole rate forces rehashing for
  // roughly half of the GUIDs, and every resolution must land on AS 1.
  PrefixTable table;
  table.Announce(C("128.0.0.0/1"), 1);
  const GuidHashFamily hashes(1, 2);
  const HoleResolver resolver(hashes, table, 40);
  int rehashed = 0;
  constexpr int kGuids = 2000;
  for (int i = 0; i < kGuids; ++i) {
    const HostResolution r =
        resolver.Resolve(Guid::FromSequence(std::uint64_t(i)), 0);
    EXPECT_EQ(r.host, 1u);
    EXPECT_FALSE(r.used_nearest);  // M=40 makes fall-through ~2^-40
    EXPECT_GE(r.stored_address.value(), 0x80000000u);
    if (r.hash_count > 1) ++rehashed;
  }
  EXPECT_NEAR(double(rehashed) / kGuids, 0.5, 0.05);
}

TEST(HoleResolverTest, RehashCountIsGeometric) {
  PrefixTable table;
  table.Announce(C("128.0.0.0/1"), 1);  // hit probability 1/2
  const GuidHashFamily hashes(1, 3);
  const HoleResolver resolver(hashes, table, 64);
  double total_hashes = 0;
  constexpr int kGuids = 5000;
  for (int i = 0; i < kGuids; ++i) {
    total_hashes +=
        resolver.Resolve(Guid::FromSequence(std::uint64_t(i)), 0).hash_count;
  }
  // Geometric with p = 1/2: mean 2 tries.
  EXPECT_NEAR(total_hashes / kGuids, 2.0, 0.1);
}

TEST(HoleResolverTest, DeputyFallbackAfterMTries) {
  // A tiny announced island makes every hash miss: with M = 3 the resolver
  // must fall through to the nearest-announced rule.
  PrefixTable table;
  table.Announce(C("10.0.0.0/24"), 7);
  const GuidHashFamily hashes(1, 4);
  const HoleResolver resolver(hashes, table, 3);
  const Guid g = Guid::FromSequence(1);
  const HostResolution r = resolver.Resolve(g, 0);
  EXPECT_TRUE(r.used_nearest);
  EXPECT_EQ(r.hash_count, 3);
  EXPECT_EQ(r.host, 7u);
  // The stored address is inside the island; the hashed address is the end
  // of the 3-step chain.
  EXPECT_TRUE(C("10.0.0.0/24").Contains(r.stored_address));
  Ipv4Address chain = hashes.Hash(g, 0);
  chain = hashes.Rehash(chain, 0);
  chain = hashes.Rehash(chain, 0);
  EXPECT_EQ(r.hashed_address, chain);
}

TEST(HoleResolverTest, FallThroughProbabilityMatchesPaper) {
  // Paper, Section III-B: at ~55% announced the probability of reaching an
  // IP hole after M = 10 hashes is ~0.034% ((1 - 0.55)^10 = 0.034%).
  PrefixGenParams params;
  params.num_ases = 300;
  params.announced_fraction = 0.55;
  params.seed = 8;
  const PrefixTable table = GeneratePrefixTable(params);
  const GuidHashFamily hashes(1, 5);
  const HoleResolver resolver(hashes, table, 10);
  int fallbacks = 0;
  constexpr int kGuids = 100000;
  for (int i = 0; i < kGuids; ++i) {
    if (resolver.Resolve(Guid::FromSequence(std::uint64_t(i)), 0)
            .used_nearest) {
      ++fallbacks;
    }
  }
  // Expected ~34 of 100k; allow generous sampling noise.
  EXPECT_LT(fallbacks, 120);
  EXPECT_GT(fallbacks, 1);
}

TEST(HoleResolverTest, DeterministicAcrossInstances) {
  // Any two gateways agree on placement — the property that lets DMap skip
  // all coordination.
  PrefixGenParams params;
  params.num_ases = 100;
  params.seed = 10;
  const PrefixTable table = GeneratePrefixTable(params);
  const GuidHashFamily h1(5, 42), h2(5, 42);
  const HoleResolver r1(h1, table, 10), r2(h2, table, 10);
  for (int i = 0; i < 200; ++i) {
    const Guid g = Guid::FromSequence(std::uint64_t(i));
    for (int k = 0; k < 5; ++k) {
      EXPECT_EQ(r1.Resolve(g, k).host, r2.Resolve(g, k).host);
    }
  }
}

TEST(HoleResolverTest, ResolveAllReturnsKResults) {
  PrefixTable table;
  table.Announce(C("0.0.0.0/0"), 1);
  const GuidHashFamily hashes(5, 6);
  const HoleResolver resolver(hashes, table);
  EXPECT_EQ(resolver.ResolveAll(Guid::FromSequence(1)).size(), 5u);
  EXPECT_EQ(resolver.k(), 5);
}

TEST(HoleResolverTest, EmptyTableThrows) {
  PrefixTable table;
  const GuidHashFamily hashes(1, 7);
  const HoleResolver resolver(hashes, table, 2);
  EXPECT_THROW((void)resolver.Resolve(Guid::FromSequence(1), 0), std::logic_error);
}

TEST(HoleResolverTest, FastPathAgreesWithTrie) {
  // The DIR-24-8 fast path must not change a single placement decision.
  PrefixGenParams params;
  params.num_ases = 200;
  params.seed = 12;
  const PrefixTable table = GeneratePrefixTable(params);
  const Dir24_8 fast(table);
  const GuidHashFamily hashes(3, 21);
  const HoleResolver slow_resolver(hashes, table, 10);
  HoleResolver fast_resolver(hashes, table, 10);
  fast_resolver.SetFastPath(&fast);

  for (int i = 0; i < 5000; ++i) {
    const Guid g = Guid::FromSequence(std::uint64_t(i));
    for (int replica = 0; replica < 3; ++replica) {
      const HostResolution a = slow_resolver.Resolve(g, replica);
      const HostResolution b = fast_resolver.Resolve(g, replica);
      ASSERT_EQ(a.host, b.host);
      ASSERT_EQ(a.stored_address, b.stored_address);
      ASSERT_EQ(a.hash_count, b.hash_count);
      ASSERT_EQ(a.used_nearest, b.used_nearest);
    }
  }
}

TEST(HoleResolverTest, OwnedSnapshotAgreesWithTrie) {
  PrefixGenParams params;
  params.num_ases = 200;
  params.seed = 14;
  const PrefixTable table = GeneratePrefixTable(params);
  const GuidHashFamily hashes(3, 22);
  const HoleResolver trie_resolver(hashes, table, 10);
  HoleResolver snap_resolver(hashes, table, 10);
  snap_resolver.EnableSnapshot();
  snap_resolver.RefreshSnapshot();
  ASSERT_TRUE(snap_resolver.snapshot_fresh());
  for (int i = 0; i < 5000; ++i) {
    const Guid g = Guid::FromSequence(std::uint64_t(i));
    for (int replica = 0; replica < 3; ++replica) {
      const HostResolution a = trie_resolver.Resolve(g, replica);
      const HostResolution b = snap_resolver.Resolve(g, replica);
      ASSERT_EQ(a.host, b.host);
      ASSERT_EQ(a.stored_address, b.stored_address);
      ASSERT_EQ(a.hash_count, b.hash_count);
      ASSERT_EQ(a.used_nearest, b.used_nearest);
    }
  }
}

TEST(HoleResolverTest, StaleSnapshotFallsBackToTrie) {
  // BGP churn after the snapshot was taken: resolutions must follow the
  // *current* trie (correctness), and RefreshSnapshot must re-arm the fast
  // path at the new epoch.
  PrefixTable table;
  table.Announce(C("0.0.0.0/1"), 1);
  const GuidHashFamily hashes(1, 23);
  HoleResolver resolver(hashes, table, 40);
  resolver.EnableSnapshot();
  resolver.RefreshSnapshot();
  ASSERT_TRUE(resolver.snapshot_fresh());

  // Announce the other half to AS 2 — the snapshot is now stale.
  table.Announce(C("128.0.0.0/1"), 2);
  EXPECT_FALSE(resolver.snapshot_fresh());
  const HoleResolver reference(hashes, table, 40);
  for (int i = 0; i < 500; ++i) {
    const Guid g = Guid::FromSequence(std::uint64_t(i));
    const HostResolution a = reference.Resolve(g, 0);
    const HostResolution b = resolver.Resolve(g, 0);
    ASSERT_EQ(a.host, b.host);
    ASSERT_EQ(a.hash_count, b.hash_count);
  }

  resolver.RefreshSnapshot();
  EXPECT_TRUE(resolver.snapshot_fresh());
  for (int i = 0; i < 500; ++i) {
    const Guid g = Guid::FromSequence(std::uint64_t(i));
    ASSERT_EQ(resolver.Resolve(g, 0).host, reference.Resolve(g, 0).host);
  }
}

TEST(HoleResolverTest, DisableSnapshotDropsIt) {
  PrefixTable table;
  table.Announce(C("0.0.0.0/0"), 1);
  const GuidHashFamily hashes(1, 24);
  HoleResolver resolver(hashes, table, 2);
  resolver.EnableSnapshot();
  resolver.RefreshSnapshot();
  ASSERT_TRUE(resolver.snapshot_fresh());
  resolver.EnableSnapshot(false);
  EXPECT_FALSE(resolver.snapshot_fresh());
  // RefreshSnapshot is a no-op while disabled.
  resolver.RefreshSnapshot();
  EXPECT_FALSE(resolver.snapshot_fresh());
  EXPECT_EQ(resolver.Resolve(Guid::FromSequence(3), 0).host, 1u);
}

TEST(HoleResolverTest, ResolveAllMatchesPerReplicaResolve) {
  // The batched wavefront must return exactly what K independent Resolve
  // calls return, in replica order — with and without the snapshot.
  PrefixGenParams params;
  params.num_ases = 150;
  params.announced_fraction = 0.55;
  params.seed = 15;
  const PrefixTable table = GeneratePrefixTable(params);
  const GuidHashFamily hashes(5, 25);
  for (const bool snapshot : {false, true}) {
    HoleResolver resolver(hashes, table, 10);
    if (snapshot) {
      resolver.EnableSnapshot();
      resolver.RefreshSnapshot();
    }
    for (int i = 0; i < 2000; ++i) {
      const Guid g = Guid::FromSequence(std::uint64_t(i));
      const std::vector<HostResolution> batch = resolver.ResolveAll(g);
      ASSERT_EQ(batch.size(), 5u);
      for (int replica = 0; replica < 5; ++replica) {
        const HostResolution one = resolver.Resolve(g, replica);
        ASSERT_EQ(batch[std::size_t(replica)].host, one.host);
        ASSERT_EQ(batch[std::size_t(replica)].stored_address,
                  one.stored_address);
        ASSERT_EQ(batch[std::size_t(replica)].hashed_address,
                  one.hashed_address);
        ASSERT_EQ(batch[std::size_t(replica)].hash_count, one.hash_count);
        ASSERT_EQ(batch[std::size_t(replica)].used_nearest, one.used_nearest);
      }
    }
  }
}

TEST(HoleResolverTest, ResolveAllAccountsMetricsLikeResolve) {
  // Same totals in the metrics registry whether resolutions happen one at a
  // time or as one batch.
  PrefixTable table;
  table.Announce(C("128.0.0.0/1"), 1);
  const GuidHashFamily hashes(4, 26);

  MetricsRegistry per_call, batched;
  HoleResolver a(hashes, table, 12), b(hashes, table, 12);
  a.SetMetrics(&per_call);
  b.SetMetrics(&batched);
  for (int i = 0; i < 300; ++i) {
    const Guid g = Guid::FromSequence(std::uint64_t(i));
    for (int replica = 0; replica < 4; ++replica) (void)a.Resolve(g, replica);
    (void)b.ResolveAll(g);
  }
  const auto sa = per_call.Snapshot();
  const auto sb = batched.Snapshot();
  ASSERT_EQ(sa.counters.size(), sb.counters.size());
  for (std::size_t i = 0; i < sa.counters.size(); ++i) {
    EXPECT_EQ(sa.counters[i].name, sb.counters[i].name);
    EXPECT_EQ(sa.counters[i].value, sb.counters[i].value)
        << sa.counters[i].name;
  }
}

TEST(HoleResolverTest, InvalidMaxHashesThrows) {
  PrefixTable table;
  table.Announce(C("0.0.0.0/0"), 1);
  const GuidHashFamily hashes(1, 8);
  EXPECT_THROW(HoleResolver(hashes, table, 0), std::invalid_argument);
}

TEST(HoleResolverTest, ResolveBatchMatchesPerGuidResolve) {
  // The multi-GUID batch shares hash kernels and probe passes across the
  // whole batch; every row must still equal the per-replica scalar result.
  PrefixGenParams params;
  params.num_ases = 120;
  params.announced_fraction = 0.5;
  params.seed = 77;
  const PrefixTable table = GeneratePrefixTable(params);
  const GuidHashFamily hashes(5, 33);
  HoleResolver resolver(hashes, table, 10);
  resolver.EnableSnapshot();
  resolver.RefreshSnapshot();

  std::vector<Guid> guids;
  for (int i = 0; i < 777; ++i) {
    guids.push_back(Guid::FromSequence(std::uint64_t(i)));
  }
  std::vector<HostResolution> batch;
  batch.resize(guids.size() * 5);
  resolver.ResolveBatch(guids, batch.data());
  for (std::size_t g = 0; g < guids.size(); ++g) {
    for (int replica = 0; replica < 5; ++replica) {
      const HostResolution one = resolver.Resolve(guids[g], replica);
      const HostResolution& row = batch[g * 5 + std::size_t(replica)];
      ASSERT_EQ(row.host, one.host) << g << "/" << replica;
      ASSERT_EQ(row.stored_address, one.stored_address);
      ASSERT_EQ(row.hash_count, one.hash_count);
      ASSERT_EQ(row.used_nearest, one.used_nearest);
    }
  }
}

TEST(HoleResolverTest, RefreshSnapshotSkipsRebuildWhenEpochUnchanged) {
  // Regression: the write-point refresh must not pay the 64 MB DIR-24-8
  // rebuild when the prefix table has not churned since the last build.
  PrefixTable table;
  table.Announce(C("0.0.0.0/1"), 1);
  const GuidHashFamily hashes(2, 5);
  HoleResolver resolver(hashes, table, 4);
  resolver.EnableSnapshot();
  EXPECT_EQ(resolver.snapshot_rebuilds(), 0u);

  resolver.RefreshSnapshot();
  EXPECT_EQ(resolver.snapshot_rebuilds(), 1u);
  for (int i = 0; i < 10; ++i) resolver.RefreshSnapshot();
  EXPECT_EQ(resolver.snapshot_rebuilds(), 1u);  // epoch unchanged: no-op

  table.Announce(C("128.0.0.0/1"), 2);  // epoch bump
  resolver.RefreshSnapshot();
  EXPECT_EQ(resolver.snapshot_rebuilds(), 2u);
  resolver.RefreshSnapshot();
  EXPECT_EQ(resolver.snapshot_rebuilds(), 2u);
  EXPECT_TRUE(resolver.snapshot_fresh());
}

TEST(HoleResolverTest, RefreshSnapshotSkipsRebuildUnderExternalFastPath) {
  // While an external Dir24_8 is installed the owned snapshot is never
  // probed, so the refresh must not keep rebuilding it.
  PrefixTable table;
  table.Announce(C("0.0.0.0/0"), 3);
  const Dir24_8 external(table);
  const GuidHashFamily hashes(2, 5);
  HoleResolver resolver(hashes, table, 4);
  resolver.EnableSnapshot();
  resolver.SetFastPath(&external);
  resolver.RefreshSnapshot();
  EXPECT_EQ(resolver.snapshot_rebuilds(), 0u);

  // Removing the fast path re-arms the owned snapshot at the next write
  // point; resolutions in between fall back to the trie (always correct).
  resolver.SetFastPath(nullptr);
  resolver.RefreshSnapshot();
  EXPECT_EQ(resolver.snapshot_rebuilds(), 1u);
  EXPECT_TRUE(resolver.snapshot_fresh());
}

}  // namespace
}  // namespace dmap
