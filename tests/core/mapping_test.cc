#include "core/mapping.h"

#include <gtest/gtest.h>

namespace dmap {
namespace {

TEST(NaSetTest, StartsEmpty) {
  NaSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.size(), 0);
  EXPECT_FALSE(set.full());
}

TEST(NaSetTest, SingleNaConstructor) {
  const NaSet set(NetworkAddress{3, 100});
  EXPECT_EQ(set.size(), 1);
  EXPECT_TRUE(set.Contains(NetworkAddress{3, 100}));
  EXPECT_TRUE(set.AttachedTo(3));
  EXPECT_FALSE(set.AttachedTo(4));
}

TEST(NaSetTest, AddRejectsDuplicates) {
  NaSet set;
  EXPECT_TRUE(set.Add(NetworkAddress{1, 10}));
  EXPECT_FALSE(set.Add(NetworkAddress{1, 10}));
  EXPECT_EQ(set.size(), 1);
  // Same AS, different locator is a distinct NA.
  EXPECT_TRUE(set.Add(NetworkAddress{1, 11}));
  EXPECT_EQ(set.size(), 2);
}

TEST(NaSetTest, CapacityIsFive) {
  NaSet set;
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(set.Add(NetworkAddress{i, i}));
  }
  EXPECT_TRUE(set.full());
  EXPECT_FALSE(set.Add(NetworkAddress{9, 9}));
  EXPECT_EQ(set.size(), 5);
}

TEST(NaSetTest, RemoveKeepsOthers) {
  NaSet set;
  set.Add(NetworkAddress{1, 1});
  set.Add(NetworkAddress{2, 2});
  set.Add(NetworkAddress{3, 3});
  EXPECT_TRUE(set.Remove(NetworkAddress{2, 2}));
  EXPECT_EQ(set.size(), 2);
  EXPECT_TRUE(set.Contains(NetworkAddress{1, 1}));
  EXPECT_TRUE(set.Contains(NetworkAddress{3, 3}));
  EXPECT_FALSE(set.Contains(NetworkAddress{2, 2}));
  EXPECT_FALSE(set.Remove(NetworkAddress{2, 2}));
}

TEST(NaSetTest, EqualityIsOrderInsensitive) {
  NaSet a, b;
  a.Add(NetworkAddress{1, 1});
  a.Add(NetworkAddress{2, 2});
  b.Add(NetworkAddress{2, 2});
  b.Add(NetworkAddress{1, 1});
  EXPECT_EQ(a, b);
  b.Add(NetworkAddress{3, 3});
  EXPECT_FALSE(a == b);
}

TEST(NaSetTest, IterationVisitsAllEntries) {
  NaSet set;
  set.Add(NetworkAddress{1, 1});
  set.Add(NetworkAddress{2, 2});
  int visited = 0;
  for (const NetworkAddress& na : set) {
    EXPECT_TRUE(na.as == 1 || na.as == 2);
    ++visited;
  }
  EXPECT_EQ(visited, 2);
}

TEST(MappingTest, EntryBitsMatchPaperAccounting) {
  // Section IV-A: 160 + 5*32 + 32 = 352 bits per entry.
  EXPECT_EQ(kMappingEntryBits, 352);
}

TEST(MappingTest, NetworkAddressToString) {
  EXPECT_EQ(ToString(NetworkAddress{42, 7}), "AS42:7");
}

}  // namespace
}  // namespace dmap
