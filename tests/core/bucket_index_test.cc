#include "core/bucket_index.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace dmap {
namespace {

std::vector<AddressSegment> SparseSegments(int count) {
  // Tiny islands scattered across a 64-bit space — the IPv6-like scenario
  // where rehash-until-hit would essentially never terminate.
  std::vector<AddressSegment> segments;
  for (int i = 0; i < count; ++i) {
    segments.push_back(AddressSegment{
        std::uint64_t(i) * 0x100000000000ULL + 0x777, 4096,
        AsId(i % 7)});
  }
  return segments;
}

TEST(BucketIndexTest, ResolutionLandsInsideAnnouncedSegment) {
  const GuidHashFamily hashes(2, 1);
  const auto segments = SparseSegments(50);
  const BucketIndex index(segments, 16, hashes);
  for (int i = 0; i < 500; ++i) {
    const auto r = index.Resolve(Guid::FromSequence(std::uint64_t(i)), 0);
    EXPECT_GE(r.address, r.segment.base);
    EXPECT_LT(r.address, r.segment.base + r.segment.size);
  }
}

TEST(BucketIndexTest, DeterministicAcrossInstances) {
  const GuidHashFamily h1(2, 5), h2(2, 5);
  const auto segments = SparseSegments(30);
  const BucketIndex a(segments, 8, h1), b(segments, 8, h2);
  for (int i = 0; i < 200; ++i) {
    const Guid g = Guid::FromSequence(std::uint64_t(i));
    for (int k = 0; k < 2; ++k) {
      EXPECT_EQ(a.Resolve(g, k).address, b.Resolve(g, k).address);
      EXPECT_EQ(a.Resolve(g, k).segment.owner, b.Resolve(g, k).segment.owner);
    }
  }
}

TEST(BucketIndexTest, ReplicasAreIndependent) {
  const GuidHashFamily hashes(2, 9);
  const auto segments = SparseSegments(100);
  const BucketIndex index(segments, 32, hashes);
  int same = 0;
  for (int i = 0; i < 300; ++i) {
    const Guid g = Guid::FromSequence(std::uint64_t(i));
    if (index.Resolve(g, 0).address == index.Resolve(g, 1).address) ++same;
  }
  EXPECT_LT(same, 10);
}

TEST(BucketIndexTest, BucketsAreBalanced) {
  const GuidHashFamily hashes(1, 2);
  const auto segments = SparseSegments(100);
  const BucketIndex index(segments, 16, hashes);
  // Round-robin dealing: ceil(100/16) = 7.
  EXPECT_EQ(index.max_bucket_size(), 7u);
  EXPECT_EQ(index.num_segments(), 100u);
  EXPECT_EQ(index.num_buckets(), 16u);
}

TEST(BucketIndexTest, LoadSpreadsAcrossSegments) {
  const GuidHashFamily hashes(1, 3);
  const auto segments = SparseSegments(20);
  const BucketIndex index(segments, 20, hashes);
  std::map<std::uint64_t, int> per_segment;
  constexpr int kGuids = 20000;
  for (int i = 0; i < kGuids; ++i) {
    ++per_segment[index.Resolve(Guid::FromSequence(std::uint64_t(i)), 0)
                      .segment.base];
  }
  EXPECT_EQ(per_segment.size(), 20u);  // every segment used
  for (const auto& [base, count] : per_segment) {
    EXPECT_GT(count, kGuids / 40) << "segment " << base << " underloaded";
    EXPECT_LT(count, kGuids / 10) << "segment " << base << " overloaded";
  }
}

TEST(BucketIndexTest, MoreBucketsThanSegmentsProbesPastEmpties) {
  const GuidHashFamily hashes(1, 4);
  const auto segments = SparseSegments(3);
  const BucketIndex index(segments, 64, hashes);  // most buckets empty
  for (int i = 0; i < 200; ++i) {
    const auto r = index.Resolve(Guid::FromSequence(std::uint64_t(i)), 0);
    EXPECT_GE(r.address, r.segment.base);
    EXPECT_LT(r.address, r.segment.base + r.segment.size);
  }
}

TEST(BucketIndexTest, SingleSegmentAlwaysChosen) {
  const GuidHashFamily hashes(1, 5);
  const std::vector<AddressSegment> segments{
      AddressSegment{0x1000, 16, 3}};
  const BucketIndex index(segments, 4, hashes);
  for (int i = 0; i < 50; ++i) {
    const auto r = index.Resolve(Guid::FromSequence(std::uint64_t(i)), 0);
    EXPECT_EQ(r.segment.owner, 3u);
    EXPECT_GE(r.address, 0x1000u);
    EXPECT_LT(r.address, 0x1010u);
  }
}

TEST(BucketIndexTest, ValidationErrors) {
  const GuidHashFamily hashes(1, 6);
  EXPECT_THROW(BucketIndex({}, 4, hashes), std::invalid_argument);
  const auto segments = SparseSegments(3);
  EXPECT_THROW(BucketIndex(segments, 0, hashes), std::invalid_argument);
  std::vector<AddressSegment> zero_sized{AddressSegment{0, 0, 1}};
  EXPECT_THROW(BucketIndex(zero_sized, 4, hashes), std::invalid_argument);
}

}  // namespace
}  // namespace dmap
