// Parameterised invariants of Algorithm 1 across announced-space density:
// for any density, resolution terminates, lands on an announced address,
// the mean hash-evaluation count follows the geometric law ~1/density, and
// the per-AS load stays proportional to announced share.
#include <gtest/gtest.h>

#include <cmath>

#include "bgp/prefix_gen.h"
#include "core/hole_resolver.h"

namespace dmap {
namespace {

class HoleResolverDensityTest : public testing::TestWithParam<double> {};

TEST_P(HoleResolverDensityTest, GeometricHashCountAndProportionalLoad) {
  const double density = GetParam();
  PrefixGenParams params;
  params.num_ases = 150;
  params.announced_fraction = density;
  params.seed = 77;
  const PrefixTable table = GeneratePrefixTable(params);
  ASSERT_NEAR(table.announced_fraction(), density, 0.02);

  const GuidHashFamily hashes(1, 11);
  const HoleResolver resolver(hashes, table, 64);

  constexpr int kGuids = 30000;
  double total_evals = 0;
  std::vector<std::uint64_t> load(params.num_ases, 0);
  for (int i = 0; i < kGuids; ++i) {
    const HostResolution r =
        resolver.Resolve(Guid::FromSequence(std::uint64_t(i)), 0);
    ASSERT_LT(r.host, params.num_ases);
    // The stored address must be announced and owned by the chosen host.
    const auto hit = table.Lookup(r.stored_address);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->owner, r.host);
    total_evals += r.hash_count;
    ++load[r.host];
  }

  // Geometric trials: E[evals] = 1 / density (fall-through negligible at
  // M = 64).
  const double actual_fraction = table.announced_fraction();
  EXPECT_NEAR(total_evals / kGuids, 1.0 / actual_fraction,
              0.05 / actual_fraction);

  // Load proportionality: aggregate over the top-share ASs (individually
  // small ASs are noisy at 30k samples).
  const std::uint64_t announced = table.announced_addresses();
  double big_share = 0, big_load = 0;
  for (AsId as = 0; as < params.num_ases; ++as) {
    const double share = double(table.AddressesOwnedBy(as)) /
                         double(announced);
    if (share > 0.02) {
      big_share += share;
      big_load += double(load[as]) / kGuids;
    }
  }
  ASSERT_GT(big_share, 0.1);
  EXPECT_NEAR(big_load, big_share, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Densities, HoleResolverDensityTest,
                         testing::Values(0.25, 0.40, 0.52, 0.65, 0.80));

}  // namespace
}  // namespace dmap
