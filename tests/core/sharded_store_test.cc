#include "core/mapping_store.h"

#include <atomic>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/thread_pool.h"

namespace dmap {
namespace {

MappingEntry Entry(AsId as, std::uint64_t version) {
  return MappingEntry{NaSet(NetworkAddress{as, as * 10}), version};
}

// The ShardedMappingStore must preserve MappingStore's per-(as, guid)
// semantics exactly: version gating, idempotent reapply, erase resetting
// the gate — the mapping_store_test suite transliterated to the sharded
// keyspace, run at several shard counts.
class ShardedStoreSemanticsTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(ShardedStoreSemanticsTest, InsertAndLookup) {
  ShardedMappingStore store(100, GetParam());
  const Guid g = Guid::FromSequence(1);
  EXPECT_EQ(store.Lookup(5, g), nullptr);
  EXPECT_TRUE(store.Upsert(5, g, Entry(5, 1)));
  const MappingEntry* found = store.Lookup(5, g);
  ASSERT_NE(found, nullptr);
  EXPECT_TRUE(found->nas.AttachedTo(5));
  EXPECT_EQ(store.size(), 1u);
  // The same GUID at a different AS is an independent replica.
  EXPECT_EQ(store.Lookup(6, g), nullptr);
}

TEST_P(ShardedStoreSemanticsTest, VersionGatePerReplica) {
  ShardedMappingStore store(100, GetParam());
  const Guid g = Guid::FromSequence(2);
  store.Upsert(7, g, Entry(6, 5));
  EXPECT_FALSE(store.Upsert(7, g, Entry(5, 4)));  // stale rejected
  EXPECT_TRUE(store.Lookup(7, g)->nas.AttachedTo(6));
  EXPECT_EQ(store.Lookup(7, g)->version, 5u);
  EXPECT_TRUE(store.Upsert(7, g, Entry(6, 5)));  // idempotent reapply
  EXPECT_TRUE(store.Upsert(7, g, Entry(8, 6)));  // newer wins
  EXPECT_TRUE(store.Lookup(7, g)->nas.AttachedTo(8));
}

TEST_P(ShardedStoreSemanticsTest, EraseResetsGate) {
  ShardedMappingStore store(100, GetParam());
  const Guid g = Guid::FromSequence(3);
  store.Upsert(1, g, Entry(1, 9));
  EXPECT_TRUE(store.Erase(1, g));
  EXPECT_FALSE(store.Erase(1, g));
  EXPECT_EQ(store.Lookup(1, g), nullptr);
  EXPECT_TRUE(store.empty());
  EXPECT_TRUE(store.Upsert(1, g, Entry(2, 1)));  // fresh entry after erase
}

TEST_P(ShardedStoreSemanticsTest, ReadMatchesLookupFreshAndStale) {
  ShardedMappingStore store(64, GetParam());
  // Stale phase: no refresh yet after mutations -> Read falls back to the
  // mutable map.
  for (int i = 0; i < 500; ++i) {
    store.Upsert(AsId(i % 64), Guid::FromSequence(std::uint64_t(i)),
                 Entry(AsId(i % 64), 1));
  }
  EXPECT_FALSE(store.snapshots_fresh());
  for (int i = 0; i < 500; ++i) {
    const Guid g = Guid::FromSequence(std::uint64_t(i));
    EXPECT_EQ(store.Read(AsId(i % 64), g), store.Lookup(AsId(i % 64), g));
    EXPECT_NE(store.Read(AsId(i % 64), g), nullptr);
  }
  // Fresh phase: snapshot probes must answer identically, including
  // misses for absent (as, guid) pairs.
  store.RefreshSnapshots();
  EXPECT_TRUE(store.snapshots_fresh());
  for (int i = 0; i < 500; ++i) {
    const Guid g = Guid::FromSequence(std::uint64_t(i));
    const MappingEntry* read = store.Read(AsId(i % 64), g);
    ASSERT_NE(read, nullptr);
    EXPECT_EQ(read->version, store.Lookup(AsId(i % 64), g)->version);
    EXPECT_EQ(store.Read(AsId((i + 1) % 64), g),
              store.Lookup(AsId((i + 1) % 64), g));
  }
  EXPECT_EQ(store.Read(0, Guid::FromSequence(99999)), nullptr);
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ShardedStoreSemanticsTest,
                         ::testing::Values(1u, 4u, 16u));

TEST(ShardedStoreTest, ShardOfIsDeterministicAndGuidOnly) {
  ShardedMappingStore a(10, 16);
  ShardedMappingStore b(10, 16);
  for (int i = 0; i < 100; ++i) {
    const Guid g = Guid::FromSequence(std::uint64_t(i));
    EXPECT_EQ(a.ShardOf(g), b.ShardOf(g));
    EXPECT_LT(a.ShardOf(g), 16u);
  }
  ShardedMappingStore one(10, 1);
  EXPECT_EQ(one.ShardOf(Guid::FromSequence(7)), 0u);
}

TEST(ShardedStoreTest, ResolveShardCountClampsAndAutoSelects) {
  EXPECT_EQ(ShardedMappingStore::ResolveShardCount(1), 1u);
  EXPECT_EQ(ShardedMappingStore::ResolveShardCount(16), 16u);
  EXPECT_EQ(ShardedMappingStore::ResolveShardCount(1 << 20),
            ShardedMappingStore::kMaxShards);
  const unsigned auto_count = ShardedMappingStore::ResolveShardCount(0);
  EXPECT_GE(auto_count, 1u);
  EXPECT_LE(auto_count, ShardedMappingStore::kMaxShards);
  EXPECT_EQ(auto_count & (auto_count - 1), 0u);  // power of two
}

TEST(ShardedStoreTest, RefreshRebuildsOnlyDirtyShards) {
  ShardedMappingStore store(100, 8);
  for (int i = 0; i < 1000; ++i) {
    store.Upsert(AsId(i % 100), Guid::FromSequence(std::uint64_t(i)),
                 Entry(AsId(i % 100), 1));
  }
  store.RefreshSnapshots();
  const std::uint64_t after_load = store.snapshot_rebuilds();
  EXPECT_LE(after_load, 8u);  // at most one rebuild per shard
  EXPECT_GE(after_load, 1u);

  // No mutations since the refresh: a second refresh is a no-op.
  store.RefreshSnapshots();
  EXPECT_EQ(store.snapshot_rebuilds(), after_load);

  // Touching one GUID dirties exactly one shard.
  store.Upsert(3, Guid::FromSequence(42), Entry(3, 2));
  EXPECT_FALSE(store.snapshots_fresh());
  store.RefreshSnapshots();
  EXPECT_EQ(store.snapshot_rebuilds(), after_load + 1);
  EXPECT_TRUE(store.snapshots_fresh());
  EXPECT_EQ(store.Read(3, Guid::FromSequence(42))->version, 2u);
}

TEST(ShardedStoreTest, AccountingIsShardCountInvariant) {
  const Cidr prefix(Ipv4Address::FromOctets(10, 0, 0, 0), 8);
  std::vector<unsigned> shard_counts = {1, 4, 16};
  std::vector<std::vector<std::size_t>> sizes_by_as;
  std::vector<std::vector<Guid>> stored_in;
  for (const unsigned shards : shard_counts) {
    ShardedMappingStore store(50, shards);
    for (int i = 0; i < 2000; ++i) {
      const AsId as = AsId(i % 50);
      const Ipv4Address addr(((i % 3 == 0) ? 0x0a000000u : 0xc0000000u) +
                             std::uint32_t(i));
      store.Upsert(as, Guid::FromSequence(std::uint64_t(i)), Entry(as, 1),
                   addr);
    }
    sizes_by_as.push_back(store.SizesByAs());
    stored_in.push_back(store.GuidsStoredIn(7, prefix));
    EXPECT_EQ(store.size(), 2000u);
    EXPECT_EQ(store.SizeAt(7), 40u);
    EXPECT_EQ(store.StorageBitsAt(7), 40u * kMappingEntryBits);
  }
  for (std::size_t i = 1; i < shard_counts.size(); ++i) {
    EXPECT_EQ(sizes_by_as[i], sizes_by_as[0]);
    EXPECT_EQ(stored_in[i], stored_in[0]);
  }
  EXPECT_FALSE(stored_in[0].empty());
}

// TSan coverage of the serving discipline: many workers Read concurrently
// against fresh snapshots, strictly separated from the serial mutate +
// refresh write points. Any read/write overlap or hidden shared mutable
// state in the read path would trip TSan here.
TEST(ShardedStoreTest, ConcurrentSnapshotReadsBetweenSerialWritePoints) {
  constexpr int kGuids = 4000;
  ShardedMappingStore store(64, 8);
  ThreadPool pool(7);
  std::uint64_t expected_hits = 0;
  for (int round = 0; round < 3; ++round) {
    // Serial write point: mutate, then publish fresh snapshots.
    for (int i = round * kGuids; i < (round + 1) * kGuids; ++i) {
      store.Upsert(AsId(i % 64), Guid::FromSequence(std::uint64_t(i)),
                   Entry(AsId(i % 64), std::uint64_t(round + 1)));
    }
    store.RefreshSnapshots();
    ASSERT_TRUE(store.snapshots_fresh());
    expected_hits += std::uint64_t((round + 1) * kGuids);

    // Parallel read phase: no writes until RunChunks returns.
    std::atomic<std::uint64_t> hits{0};
    pool.RunChunks(64, [&](std::size_t chunk, unsigned worker) {
      (void)worker;
      std::uint64_t local = 0;
      for (int i = 0; i < (round + 1) * kGuids; ++i) {
        const Guid g = Guid::FromSequence(std::uint64_t(i));
        const AsId as = AsId(i % 64);
        if (as % 64 != chunk) continue;
        if (store.Read(as, g) != nullptr) ++local;
      }
      hits.fetch_add(local, std::memory_order_relaxed);
    });
    EXPECT_EQ(hits.load(), std::uint64_t((round + 1) * kGuids));
  }
  (void)expected_hits;
}

}  // namespace
}  // namespace dmap
