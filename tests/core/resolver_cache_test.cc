#include "core/resolver_cache.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace dmap {
namespace {

MappingEntry Entry(AsId as, std::uint64_t version = 1,
                   std::uint32_t writer = 0) {
  return MappingEntry{NaSet(NetworkAddress{as, 1}), version, writer};
}

CacheConfig SmallConfig(std::size_t capacity = 64, double ttl_ms = 0.0,
                        unsigned shards = 4) {
  CacheConfig config;
  config.capacity = capacity;
  config.ttl_ms = ttl_ms;
  config.shards = shards;
  return config;
}

TEST(CacheConfigTest, ParseArgBareNumberIsCapacity) {
  const CacheConfig config = CacheConfig::ParseArg("4096");
  EXPECT_EQ(config.capacity, 4096u);
  EXPECT_DOUBLE_EQ(config.ttl_ms, 0.0);
  EXPECT_TRUE(config.enabled());
}

TEST(CacheConfigTest, ParseArgKeyValuePairs) {
  const CacheConfig config =
      CacheConfig::ParseArg("capacity=1024,ttl_ms=250,shards=16");
  EXPECT_EQ(config.capacity, 1024u);
  EXPECT_DOUBLE_EQ(config.ttl_ms, 250.0);
  EXPECT_EQ(config.shards, 16u);
  EXPECT_FALSE(config.invalidate_on_update);
}

TEST(CacheConfigTest, ParseArgAcceptsBothInvalidateSpellings) {
  EXPECT_TRUE(CacheConfig::ParseArg("capacity=8,invalidate_on_update=1")
                  .invalidate_on_update);
  EXPECT_TRUE(
      CacheConfig::ParseArg("capacity=8,invalidate=true").invalidate_on_update);
  // The long spelling wins when both are present.
  EXPECT_FALSE(
      CacheConfig::ParseArg("capacity=8,invalidate=1,invalidate_on_update=0")
          .invalidate_on_update);
}

TEST(CacheConfigTest, ValidateRejectsBadFields) {
  EXPECT_THROW(CacheConfig::ParseArg("capacity=8,shards=0"),
               std::invalid_argument);
  EXPECT_THROW(CacheConfig::ParseArg("capacity=8,shards=1000"),
               std::invalid_argument);
  EXPECT_THROW(CacheConfig::ParseArg("capacity=8,ttl_ms=-1"),
               std::invalid_argument);
  // Disabled cache short-circuits field validation.
  EXPECT_NO_THROW(CacheConfig::ParseArg("capacity=0,shards=0").Validate());
}

TEST(ResolverCacheTest, ZeroCapacityConstructionThrows) {
  EXPECT_THROW(ResolverCache(SmallConfig(0)), std::invalid_argument);
}

TEST(ResolverCacheTest, SerialGetPutRoundTrip) {
  ResolverCache cache(SmallConfig());
  const Guid g = Guid::FromSequence(1);
  EXPECT_EQ(cache.Get(7, g, SimTime::Zero()), nullptr);
  cache.Put(7, g, Entry(42), SimTime::Zero());
  const MappingEntry* hit = cache.Get(7, g, SimTime::Seconds(1));
  ASSERT_NE(hit, nullptr);
  EXPECT_TRUE(hit->nas.AttachedTo(42));
  // Same GUID, different querier AS: a distinct cache line.
  EXPECT_EQ(cache.Get(8, g, SimTime::Seconds(1)), nullptr);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(ResolverCacheTest, TtlExpiryEvictsOnSerialAccess) {
  ResolverCache cache(SmallConfig(64, /*ttl_ms=*/100.0));
  const Guid g = Guid::FromSequence(2);
  cache.Put(7, g, Entry(42), SimTime::Zero());
  EXPECT_NE(cache.Get(7, g, SimTime::Millis(100)), nullptr);
  EXPECT_EQ(cache.Get(7, g, SimTime::Millis(101)), nullptr);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(ResolverCacheTest, ZeroTtlNeverExpires) {
  ResolverCache cache(SmallConfig(64, /*ttl_ms=*/0.0));
  const Guid g = Guid::FromSequence(3);
  cache.Put(7, g, Entry(42), SimTime::Zero());
  EXPECT_NE(cache.Get(7, g, SimTime::Seconds(1e9)), nullptr);
}

TEST(ResolverCacheTest, InvalidateDropsEveryHolder) {
  ResolverCache cache(SmallConfig());
  const Guid g = Guid::FromSequence(4);
  const Guid other = Guid::FromSequence(5);
  for (AsId as = 1; as <= 5; ++as) {
    cache.Put(as, g, Entry(42), SimTime::Zero());
  }
  cache.Put(1, other, Entry(9), SimTime::Zero());
  EXPECT_EQ(cache.Invalidate(g), 5u);
  EXPECT_EQ(cache.invalidations(), 5u);
  EXPECT_EQ(cache.Invalidate(g), 0u);  // already gone
  for (AsId as = 1; as <= 5; ++as) {
    EXPECT_EQ(cache.Get(as, g, SimTime::Seconds(1)), nullptr);
  }
  // Unrelated GUIDs survive.
  EXPECT_NE(cache.Get(1, other, SimTime::Seconds(1)), nullptr);
}

TEST(ResolverCacheTest, ProbeSeesOnlyPublishedSnapshots) {
  ResolverCache cache(SmallConfig());
  const Guid g = Guid::FromSequence(6);
  cache.Put(7, g, Entry(42), SimTime::Zero());
  // Mutations since the last RefreshSnapshots: Probe must miss, not fall
  // back to the mutable LRU.
  EXPECT_FALSE(cache.snapshots_fresh());
  EXPECT_EQ(cache.Probe(7, g, SimTime::Seconds(1)), nullptr);
  cache.RefreshSnapshots();
  EXPECT_TRUE(cache.snapshots_fresh());
  const MappingEntry* hit = cache.Probe(7, g, SimTime::Seconds(1));
  ASSERT_NE(hit, nullptr);
  EXPECT_TRUE(hit->nas.AttachedTo(42));
  // A later mutation stales only the touched shard's snapshot.
  cache.Put(8, g, Entry(42), SimTime::Seconds(2));
  EXPECT_EQ(cache.Probe(7, g, SimTime::Seconds(2)), nullptr);
}

TEST(ResolverCacheTest, ProbeRespectsTtlWithoutEvicting) {
  ResolverCache cache(SmallConfig(64, /*ttl_ms=*/100.0));
  const Guid g = Guid::FromSequence(7);
  cache.Put(7, g, Entry(42), SimTime::Zero());
  cache.RefreshSnapshots();
  EXPECT_NE(cache.Probe(7, g, SimTime::Millis(100)), nullptr);
  EXPECT_EQ(cache.Probe(7, g, SimTime::Millis(101)), nullptr);
  // The snapshot path never mutates: the entry is still resident.
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(ResolverCacheTest, ApplyFillsIsLaneOrderIndependent) {
  // The same set of fills, buffered under opposite worker assignments,
  // must produce identical cache contents: the merge sorts by a pure
  // function of the fill itself, never by lane index.
  struct Fill {
    AsId as;
    std::uint64_t seq;
    std::uint64_t version;
  };
  const std::vector<Fill> fills = {
      {10, 1, 1}, {11, 1, 3}, {10, 2, 2}, {11, 2, 1}, {10, 1, 2},
  };
  ResolverCache forward(SmallConfig());
  ResolverCache reversed(SmallConfig());
  forward.EnsureWorkers(2);
  reversed.EnsureWorkers(2);
  for (std::size_t i = 0; i < fills.size(); ++i) {
    const Fill& f = fills[i];
    const Guid g = Guid::FromSequence(f.seq);
    forward.RecordFill(unsigned(i % 2), f.as, g, Entry(AsId(20), f.version),
                       SimTime::Zero());
    reversed.RecordFill(unsigned((i + 1) % 2), f.as, g,
                        Entry(AsId(20), f.version), SimTime::Zero());
  }
  forward.ApplyFills();
  reversed.ApplyFills();
  EXPECT_EQ(forward.size(), 4u);  // (10,1) deduped: one entry per key
  EXPECT_EQ(forward.size(), reversed.size());
  for (const Fill& f : fills) {
    const Guid g = Guid::FromSequence(f.seq);
    const MappingEntry* a = forward.Get(f.as, g, SimTime::Seconds(1));
    const MappingEntry* b = reversed.Get(f.as, g, SimTime::Seconds(1));
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->version, b->version);
  }
  // Duplicate key (as=10, seq=1): the newest logical stamp wins.
  EXPECT_EQ(
      forward.Get(10, Guid::FromSequence(1), SimTime::Seconds(1))->version,
      2u);
}

TEST(ResolverCacheTest, WorkerTalliesFoldIntoTotals) {
  ResolverCache cache(SmallConfig());
  cache.EnsureWorkers(3);
  cache.TallyProbe(0, true);
  cache.TallyProbe(1, true);
  cache.TallyProbe(2, false);
  cache.TallyStaleServed(1);
  cache.CountStaleServed();
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.stale_served(), 2u);
}

TEST(ResolverCacheTest, CapacityOverflowEvictsLru) {
  // One shard so the LRU order is global; capacity 3.
  ResolverCache cache(SmallConfig(3, 0.0, /*shards=*/1));
  for (std::uint64_t i = 0; i < 3; ++i) {
    cache.Put(7, Guid::FromSequence(i), Entry(42), SimTime::Zero());
  }
  // Touch 0 so the tail is 1; the next insert evicts it.
  EXPECT_NE(cache.Get(7, Guid::FromSequence(0), SimTime::Seconds(1)), nullptr);
  cache.Put(7, Guid::FromSequence(3), Entry(42), SimTime::Seconds(2));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.Get(7, Guid::FromSequence(1), SimTime::Seconds(3)), nullptr);
  EXPECT_NE(cache.Get(7, Guid::FromSequence(0), SimTime::Seconds(3)), nullptr);
}

TEST(ResolverCacheTest, SnapshotRebuildsOnlyDirtyShards) {
  ResolverCache cache(SmallConfig(64, 0.0, /*shards=*/4));
  for (std::uint64_t i = 0; i < 16; ++i) {
    cache.Put(7, Guid::FromSequence(i), Entry(42), SimTime::Zero());
  }
  cache.RefreshSnapshots();
  const std::uint64_t after_first = cache.snapshot_rebuilds();
  EXPECT_GE(after_first, 1u);
  cache.RefreshSnapshots();  // nothing dirty: no work
  EXPECT_EQ(cache.snapshot_rebuilds(), after_first);
  cache.Put(7, Guid::FromSequence(0), Entry(43, 2), SimTime::Seconds(1));
  cache.RefreshSnapshots();  // exactly one shard went stale
  EXPECT_EQ(cache.snapshot_rebuilds(), after_first + 1);
}

}  // namespace
}  // namespace dmap
