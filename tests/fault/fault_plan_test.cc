#include "fault/fault_plan.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <stdexcept>
#include <string>

#include "sim/environment.h"

namespace dmap {
namespace {

TEST(FaultPlanTest, DefaultPlanIsBenign) {
  FaultPlan plan;
  EXPECT_FALSE(plan.HasMessageFaults());
  EXPECT_NO_THROW(plan.Validate());
  EXPECT_TRUE(plan.crashes.empty());
  EXPECT_TRUE(plan.outages.empty());
}

TEST(FaultPlanTest, ParseStringReadsEveryField) {
  const FaultPlan plan = FaultPlan::ParseString(R"(
    # chaos scenario
    drop_probability      = 0.05
    duplicate_probability = 0.02
    jitter_ms             = 10.0
    crash  = 12:100:500, 44:0:inf
    outage = 7:200:800
  )");
  EXPECT_DOUBLE_EQ(plan.drop_probability, 0.05);
  EXPECT_DOUBLE_EQ(plan.duplicate_probability, 0.02);
  EXPECT_DOUBLE_EQ(plan.jitter_ms, 10.0);
  EXPECT_TRUE(plan.HasMessageFaults());

  ASSERT_EQ(plan.crashes.size(), 2u);
  EXPECT_EQ(plan.crashes[0].as, 12u);
  EXPECT_EQ(plan.crashes[0].down_at, SimTime::Millis(100.0));
  EXPECT_EQ(plan.crashes[0].up_at, SimTime::Millis(500.0));
  EXPECT_TRUE(plan.crashes[0].wipe_storage);
  EXPECT_EQ(plan.crashes[1].as, 44u);
  EXPECT_EQ(plan.crashes[1].up_at, FailureView::kForever);

  ASSERT_EQ(plan.outages.size(), 1u);
  EXPECT_EQ(plan.outages[0].as, 7u);
  // Regional outages keep the mapping stores intact.
  EXPECT_FALSE(plan.outages[0].wipe_storage);
}

TEST(FaultPlanTest, ParseFileMatchesParseString) {
  const std::string path = testing::TempDir() + "/fault_plan_test.plan";
  {
    std::ofstream out(path);
    out << "drop_probability = 0.1\ncrash = 3:10:20\n";
  }
  const FaultPlan plan = FaultPlan::ParseFile(path);
  EXPECT_DOUBLE_EQ(plan.drop_probability, 0.1);
  ASSERT_EQ(plan.crashes.size(), 1u);
  EXPECT_EQ(plan.crashes[0].as, 3u);
}

TEST(FaultPlanTest, ValidateNamesTheOffendingField) {
  FaultPlan plan;
  plan.drop_probability = 1.5;
  EXPECT_THROW(plan.Validate(), std::invalid_argument);

  plan = FaultPlan{};
  plan.duplicate_probability = -0.1;
  EXPECT_THROW(plan.Validate(), std::invalid_argument);

  plan = FaultPlan{};
  plan.jitter_ms = -1.0;
  EXPECT_THROW(plan.Validate(), std::invalid_argument);

  plan = FaultPlan{};
  CrashWindow inverted;
  inverted.as = 1;
  inverted.down_at = SimTime::Millis(100.0);
  inverted.up_at = SimTime::Millis(50.0);
  plan.crashes.push_back(inverted);
  EXPECT_THROW(plan.Validate(), std::invalid_argument);
}

TEST(FaultPlanTest, ParseRejectsMalformedWindows) {
  EXPECT_THROW(FaultPlan::ParseString("crash = 12:100"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::ParseString("crash = abc:0:10"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::ParseString("crash = 12:zero:10"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::ParseString("outage = 12:0:soon"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::ParseString("crash = 12:500:100"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::ParseString("drop_probability = 2.0"),
               std::invalid_argument);
}

TEST(FaultPlanTest, ParsePartitionReadsWindows) {
  const FaultPlan plan = FaultPlan::ParseString(R"(
    partition = 3|9:100:400, 12|7:0:inf
  )");
  ASSERT_EQ(plan.partitions.size(), 2u);
  EXPECT_EQ(plan.partitions[0].a, 3u);
  EXPECT_EQ(plan.partitions[0].b, 9u);
  EXPECT_EQ(plan.partitions[0].down_at, SimTime::Millis(100.0));
  EXPECT_EQ(plan.partitions[0].up_at, SimTime::Millis(400.0));
  EXPECT_EQ(plan.partitions[1].a, 12u);
  EXPECT_EQ(plan.partitions[1].b, 7u);
  EXPECT_EQ(plan.partitions[1].up_at, FailureView::kForever);
  // A partition alone is schedule state, not a per-message fault.
  EXPECT_FALSE(plan.HasMessageFaults());
}

TEST(FaultPlanTest, ParseRejectsMalformedPartitions) {
  const auto error_of = [](const std::string& text) -> std::string {
    try {
      FaultPlan::ParseString(text);
    } catch (const std::invalid_argument& e) {
      return e.what();
    }
    return "";
  };
  EXPECT_NE(error_of("partition = 39:100:400")
                .find("expected a|b:down_ms:up_ms"),
            std::string::npos);
  EXPECT_NE(error_of("partition = 3|9:100").find("expected a|b:down_ms:up_ms"),
            std::string::npos);
  EXPECT_NE(error_of("partition = x|9:0:10").find("first AS id"),
            std::string::npos);
  EXPECT_NE(error_of("partition = 3|y:0:10").find("second AS id"),
            std::string::npos);
  EXPECT_NE(error_of("partition = 3|3:0:10").find("endpoints must differ"),
            std::string::npos);
  EXPECT_NE(error_of("partition = 3|9:ten:10").find("down_ms"),
            std::string::npos);
  EXPECT_NE(error_of("partition = 3|9:0:soon").find("up_ms"),
            std::string::npos);
  // Inverted windows get through the parser but not Validate().
  EXPECT_THROW(FaultPlan::ParseString("partition = 3|9:400:100"),
               std::invalid_argument);
}

TEST(FaultPlanTest, ValidateChecksPartitionEntries) {
  FaultPlan plan;
  PartitionWindow window;
  window.a = 1;
  window.b = 1;
  plan.partitions.push_back(window);
  EXPECT_THROW(plan.Validate(), std::invalid_argument);

  plan = FaultPlan{};
  window = PartitionWindow{};
  window.a = 1;  // b stays kInvalidAs
  plan.partitions.push_back(window);
  EXPECT_THROW(plan.Validate(), std::invalid_argument);

  plan = FaultPlan{};
  window = PartitionWindow{};
  window.a = 1;
  window.b = 2;
  window.down_at = SimTime::Millis(400.0);
  window.up_at = SimTime::Millis(100.0);
  plan.partitions.push_back(window);
  EXPECT_THROW(plan.Validate(), std::invalid_argument);
}

TEST(FaultPlanTest, CustomerConeTakesLowerDegreeNeighbors) {
  const SimEnvironment env =
      BuildEnvironment(EnvironmentParams::Scaled(200, 7));

  // Pick the highest-degree AS: a provider whose cone is its stubs.
  AsId center = 0;
  for (AsId as = 1; as < env.graph.num_nodes(); ++as) {
    if (env.graph.Degree(as) > env.graph.Degree(center)) center = as;
  }
  const std::vector<AsId> cone = CustomerCone(env.graph, center);

  // The cone contains the center, is sorted, and every other member is a
  // strictly lower-degree neighbor of the center.
  EXPECT_TRUE(std::is_sorted(cone.begin(), cone.end()));
  bool saw_center = false;
  for (const AsId member : cone) {
    if (member == center) {
      saw_center = true;
      continue;
    }
    EXPECT_TRUE(env.graph.HasEdge(center, member));
    EXPECT_LT(env.graph.Degree(member), env.graph.Degree(center));
  }
  EXPECT_TRUE(saw_center);

  // A pure stub (degree 1, attached to a higher-degree provider) cones to
  // just itself.
  for (AsId as = 0; as < env.graph.num_nodes(); ++as) {
    if (env.graph.Degree(as) != 1) continue;
    const AsGraph::Neighbor provider = env.graph.Neighbors(as)[0];
    if (env.graph.Degree(provider.id) <= 1) continue;
    EXPECT_EQ(CustomerCone(env.graph, as), std::vector<AsId>{as});
    break;
  }

  EXPECT_THROW(CustomerCone(env.graph, env.graph.num_nodes()),
               std::invalid_argument);
}

}  // namespace
}  // namespace dmap
