#include "fault/failure_view.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace dmap {
namespace {

SimTime Ms(double ms) { return SimTime::Millis(ms); }

TEST(FailureViewTest, EmptyViewReportsNothingFailed) {
  FailureView view;
  EXPECT_TRUE(view.Empty());
  EXPECT_FALSE(view.TimeVarying());
  EXPECT_FALSE(view.IsFailed(0));
  EXPECT_FALSE(view.IsFailedAt(17, Ms(1e9)));
  EXPECT_TRUE(view.FailedAt(Ms(0)).empty());
}

TEST(FailureViewTest, SetFailedMatchesLegacyStaticSemantics) {
  FailureView view;
  view.SetFailed({7, 3});
  EXPECT_TRUE(view.IsFailed(3));
  EXPECT_TRUE(view.IsFailed(7));
  EXPECT_FALSE(view.IsFailed(4));
  // A static failure is a window spanning all of time: every instant of
  // the schedule agrees with the static view.
  EXPECT_TRUE(view.IsFailedAt(3, Ms(1e12)));
  EXPECT_EQ(view.FailedAt(Ms(500.0)), (std::vector<AsId>{3, 7}));
  // Static windows are not "time-varying": the static view is exact.
  EXPECT_FALSE(view.TimeVarying());

  // SetFailed replaces the whole schedule, like the legacy call it mirrors.
  view.SetFailed({9});
  EXPECT_FALSE(view.IsFailed(3));
  EXPECT_TRUE(view.IsFailed(9));
}

TEST(FailureViewTest, FailOpensWindowFromGivenTime) {
  FailureView view;
  view.Fail(5, Ms(100.0));
  EXPECT_FALSE(view.IsFailed(5));  // static view: window misses time zero
  EXPECT_FALSE(view.IsFailedAt(5, Ms(99.9)));
  EXPECT_TRUE(view.IsFailedAt(5, Ms(100.0)));  // half-open: down_at included
  EXPECT_TRUE(view.IsFailedAt(5, Ms(1e9)));    // never recovers
  EXPECT_TRUE(view.TimeVarying());
}

TEST(FailureViewTest, RecoverClosesWindowsOpenAtThatTime) {
  FailureView view;
  view.Fail(5);  // down for all time
  view.Recover(5, Ms(50.0));
  EXPECT_TRUE(view.IsFailedAt(5, Ms(49.9)));
  EXPECT_FALSE(view.IsFailedAt(5, Ms(50.0)));  // half-open: up_at excluded
  EXPECT_TRUE(view.IsFailed(5));               // still down at time zero
}

TEST(FailureViewTest, RecoverAtZeroErasesStaticFailure) {
  FailureView view;
  view.Fail(4);
  view.Recover(4);
  EXPECT_FALSE(view.IsFailed(4));
  EXPECT_FALSE(view.IsFailedAt(4, Ms(123.0)));
}

TEST(FailureViewTest, AddWindowEnforcesOrderedBounds) {
  FailureView view;
  EXPECT_THROW(view.AddWindow(1, Ms(10.0), Ms(5.0)), std::invalid_argument);
  // An empty half-open window is legal and never fails the AS.
  view.AddWindow(1, Ms(10.0), Ms(10.0));
  EXPECT_FALSE(view.IsFailedAt(1, Ms(10.0)));
}

TEST(FailureViewTest, DisjointWindowsEachTakeEffect) {
  FailureView view;
  view.AddWindow(2, Ms(10.0), Ms(20.0));
  view.AddWindow(2, Ms(30.0), Ms(40.0));
  EXPECT_FALSE(view.IsFailedAt(2, Ms(9.9)));
  EXPECT_TRUE(view.IsFailedAt(2, Ms(15.0)));
  EXPECT_FALSE(view.IsFailedAt(2, Ms(25.0)));
  EXPECT_TRUE(view.IsFailedAt(2, Ms(35.0)));
  EXPECT_FALSE(view.IsFailedAt(2, Ms(40.0)));
  EXPECT_TRUE(view.TimeVarying());
}

TEST(FailureViewTest, FailedAtReturnsSortedSnapshot) {
  FailureView view;
  view.AddWindow(9, Ms(0.0), Ms(100.0));
  view.AddWindow(3, Ms(0.0), Ms(100.0));
  view.AddWindow(7, Ms(50.0), Ms(200.0));
  EXPECT_EQ(view.FailedAt(Ms(10.0)), (std::vector<AsId>{3, 9}));
  EXPECT_EQ(view.FailedAt(Ms(60.0)), (std::vector<AsId>{3, 7, 9}));
  EXPECT_EQ(view.FailedAt(Ms(150.0)), (std::vector<AsId>{7}));
  EXPECT_TRUE(view.FailedAt(Ms(300.0)).empty());
}

TEST(FailureViewTest, ClearForgetsEverything) {
  FailureView view;
  view.SetFailed({1, 2, 3});
  view.Clear();
  EXPECT_TRUE(view.Empty());
  EXPECT_FALSE(view.IsFailed(1));
}

TEST(FailureViewTest, PartitionWindowsAreSymmetricAndTimed) {
  FailureView view;
  EXPECT_FALSE(view.HasPartitions());
  view.AddPartition(3, 9, Ms(100.0), Ms(400.0));
  EXPECT_TRUE(view.HasPartitions());
  EXPECT_FALSE(view.Empty());

  // Half-open [down_at, up_at), symmetric in the endpoints.
  EXPECT_FALSE(view.IsPartitionedAt(3, 9, Ms(99.9)));
  EXPECT_TRUE(view.IsPartitionedAt(3, 9, Ms(100.0)));
  EXPECT_TRUE(view.IsPartitionedAt(9, 3, Ms(250.0)));
  EXPECT_FALSE(view.IsPartitionedAt(3, 9, Ms(400.0)));
  // Only the named pair is cut.
  EXPECT_FALSE(view.IsPartitionedAt(3, 7, Ms(250.0)));
  EXPECT_FALSE(view.IsPartitionedAt(9, 7, Ms(250.0)));
  // Neither endpoint is *failed* — partitions are link state, not AS state.
  EXPECT_FALSE(view.IsFailedAt(3, Ms(250.0)));
  EXPECT_FALSE(view.IsFailedAt(9, Ms(250.0)));

  // Disjoint windows of the same pair each take effect; endpoint order at
  // insertion does not matter.
  view.AddPartition(9, 3, Ms(500.0), FailureView::kForever);
  EXPECT_FALSE(view.IsPartitionedAt(3, 9, Ms(450.0)));
  EXPECT_TRUE(view.IsPartitionedAt(3, 9, Ms(1e9)));

  view.Clear();
  EXPECT_FALSE(view.HasPartitions());
  EXPECT_TRUE(view.Empty());
}

TEST(FailureViewTest, AddPartitionValidates) {
  FailureView view;
  EXPECT_THROW(view.AddPartition(4, 4, Ms(0.0), Ms(10.0)),
               std::invalid_argument);
  EXPECT_THROW(view.AddPartition(1, 2, Ms(10.0), Ms(5.0)),
               std::invalid_argument);
  // An empty half-open window is legal and never cuts the pair.
  view.AddPartition(1, 2, Ms(10.0), Ms(10.0));
  EXPECT_FALSE(view.IsPartitionedAt(1, 2, Ms(10.0)));
}

TEST(FailureViewTest, KForeverOutlastsAnySimulatedHorizon) {
  FailureView view;
  view.AddWindow(6, Ms(0.0), FailureView::kForever);
  // A decade of simulated milliseconds is still inside the window.
  EXPECT_TRUE(view.IsFailedAt(6, Ms(3.2e11)));
}

}  // namespace
}  // namespace dmap
