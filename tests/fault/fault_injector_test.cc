#include "fault/fault_injector.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>

#include "sim/environment.h"

namespace dmap {
namespace {

bool SameFate(const MessageFate& a, const MessageFate& b) {
  return a.dropped == b.dropped && a.delays_ms == b.delays_ms;
}

TEST(FaultInjectorTest, BenignPlanDeliversEverythingOnceUndelayed) {
  FaultInjector injector(FaultPlan{}, /*seed=*/42);
  for (std::uint64_t seq = 0; seq < 1000; ++seq) {
    const MessageFate fate = injector.FateOf(seq);
    EXPECT_FALSE(fate.dropped);
    ASSERT_EQ(fate.delays_ms.size(), 1u);
    EXPECT_DOUBLE_EQ(fate.delays_ms[0], 0.0);
  }
}

TEST(FaultInjectorTest, FateIsAPureFunctionOfSeedAndSequence) {
  FaultPlan plan;
  plan.drop_probability = 0.3;
  plan.duplicate_probability = 0.2;
  plan.jitter_ms = 15.0;

  FaultInjector a(plan, 7);
  FaultInjector b(plan, 7);
  // Query b in reverse order and a twice: counter-based fates must not
  // depend on call order or any shared RNG stream.
  for (std::uint64_t seq = 500; seq-- > 0;) {
    const MessageFate reversed = b.FateOf(seq);
    EXPECT_TRUE(SameFate(a.FateOf(seq), reversed));
    EXPECT_TRUE(SameFate(a.FateOf(seq), reversed));
  }

  // A different seed gives a different fault pattern.
  FaultInjector c(plan, 8);
  int differing = 0;
  for (std::uint64_t seq = 0; seq < 500; ++seq) {
    if (!SameFate(a.FateOf(seq), c.FateOf(seq))) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultInjectorTest, FateFrequenciesTrackThePlan) {
  FaultPlan plan;
  plan.drop_probability = 0.25;
  plan.duplicate_probability = 0.5;
  plan.jitter_ms = 10.0;
  FaultInjector injector(plan, 99);

  const std::uint64_t n = 20000;
  std::uint64_t dropped = 0, duplicated = 0;
  for (std::uint64_t seq = 0; seq < n; ++seq) {
    const MessageFate fate = injector.FateOf(seq);
    if (fate.dropped) {
      ++dropped;
      EXPECT_TRUE(fate.delays_ms.empty());
      continue;
    }
    ASSERT_GE(fate.delays_ms.size(), 1u);
    ASSERT_LE(fate.delays_ms.size(), 2u);
    if (fate.delays_ms.size() == 2) ++duplicated;
    for (const double delay : fate.delays_ms) {
      EXPECT_GE(delay, 0.0);
      EXPECT_LT(delay, plan.jitter_ms);
    }
  }
  EXPECT_NEAR(double(dropped) / double(n), plan.drop_probability, 0.02);
  EXPECT_NEAR(double(duplicated) / double(n - dropped),
              plan.duplicate_probability, 0.02);
}

TEST(FaultInjectorTest, InstallScheduleExpandsCrashesAndCones) {
  const SimEnvironment env =
      BuildEnvironment(EnvironmentParams::Scaled(200, 7));

  // Pick a provider with a non-trivial cone for the outage.
  AsId provider = 0;
  for (AsId as = 1; as < env.graph.num_nodes(); ++as) {
    if (env.graph.Degree(as) > env.graph.Degree(provider)) provider = as;
  }
  const std::vector<AsId> cone = CustomerCone(env.graph, provider);
  ASSERT_GT(cone.size(), 1u);

  FaultPlan plan;
  CrashWindow crash;
  crash.as = 5;
  crash.down_at = SimTime::Millis(10.0);
  crash.up_at = SimTime::Millis(20.0);
  plan.crashes.push_back(crash);
  CrashWindow outage;
  outage.as = provider;
  outage.down_at = SimTime::Millis(100.0);
  outage.up_at = SimTime::Millis(200.0);
  outage.wipe_storage = false;
  plan.outages.push_back(outage);

  FaultInjector injector(plan, 1);
  FailureView view;
  injector.InstallSchedule(env.graph, view);

  EXPECT_TRUE(view.IsFailedAt(5, SimTime::Millis(15.0)));
  EXPECT_FALSE(view.IsFailedAt(5, SimTime::Millis(25.0)));
  // The regional outage takes down the provider and its whole cone, for
  // exactly the window.
  for (const AsId member : cone) {
    EXPECT_TRUE(view.IsFailedAt(member, SimTime::Millis(150.0)))
        << "cone member " << member;
    EXPECT_FALSE(view.IsFailedAt(member, SimTime::Millis(250.0)))
        << "cone member " << member;
  }

  // Only the crash wipes storage; the regional outage keeps it.
  const auto wipes = injector.WipeSchedule();
  ASSERT_EQ(wipes.size(), 1u);
  EXPECT_EQ(wipes[0].first, SimTime::Millis(10.0));
  EXPECT_EQ(wipes[0].second, 5u);
}

TEST(FaultInjectorTest, WipeScheduleIsSortedByTimeThenAs) {
  FaultPlan plan;
  const auto add = [&plan](AsId as, double down) {
    CrashWindow w;
    w.as = as;
    w.down_at = SimTime::Millis(down);
    w.up_at = FailureView::kForever;
    plan.crashes.push_back(w);
  };
  add(9, 50.0);
  add(2, 50.0);
  add(7, 10.0);
  FaultInjector injector(plan, 1);
  const auto wipes = injector.WipeSchedule();
  ASSERT_EQ(wipes.size(), 3u);
  EXPECT_EQ(wipes[0], (std::pair<SimTime, AsId>{SimTime::Millis(10.0), 7}));
  EXPECT_EQ(wipes[1], (std::pair<SimTime, AsId>{SimTime::Millis(50.0), 2}));
  EXPECT_EQ(wipes[2], (std::pair<SimTime, AsId>{SimTime::Millis(50.0), 9}));
}

TEST(FaultInjectorTest, InstallScheduleRejectsUnknownAs) {
  const SimEnvironment env =
      BuildEnvironment(EnvironmentParams::Scaled(50, 7));
  FaultPlan plan;
  CrashWindow crash;
  crash.as = env.graph.num_nodes();  // one past the end
  plan.crashes.push_back(crash);
  FaultInjector injector(plan, 1);
  FailureView view;
  EXPECT_THROW(injector.InstallSchedule(env.graph, view),
               std::invalid_argument);
}

TEST(FaultInjectorTest, InstallScheduleExpandsAndValidatesPartitions) {
  const SimEnvironment env =
      BuildEnvironment(EnvironmentParams::Scaled(50, 7));

  FaultPlan plan;
  PartitionWindow cut;
  cut.a = 3;
  cut.b = 9;
  cut.down_at = SimTime::Millis(100.0);
  cut.up_at = SimTime::Millis(400.0);
  plan.partitions.push_back(cut);
  {
    FaultInjector injector(plan, 1);
    FailureView view;
    injector.InstallSchedule(env.graph, view);
    EXPECT_TRUE(view.IsPartitionedAt(9, 3, SimTime::Millis(150.0)));
    EXPECT_FALSE(view.IsPartitionedAt(9, 3, SimTime::Millis(450.0)));
    // The cut is not an outage: both endpoints stay up.
    EXPECT_FALSE(view.IsFailedAt(3, SimTime::Millis(150.0)));
    EXPECT_FALSE(view.IsFailedAt(9, SimTime::Millis(150.0)));
  }

  // Either endpoint out of range is rejected with the same diagnostics as
  // crash/outage entries.
  plan.partitions[0].b = env.graph.num_nodes();
  FaultInjector bad(plan, 1);
  FailureView view;
  EXPECT_THROW(bad.InstallSchedule(env.graph, view), std::invalid_argument);
}

}  // namespace
}  // namespace dmap
