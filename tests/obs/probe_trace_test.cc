#include "obs/probe_trace.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/guid.h"
#include "obs/export.h"

namespace dmap {
namespace {

ProbeTrace MakeTrace(std::uint64_t fp, AsId querier, double latency) {
  ProbeTrace t;
  t.op = 'L';
  t.guid_fp = fp;
  t.querier = querier;
  t.found = true;
  t.latency_ms = latency;
  t.attempts = 1;
  t.probes.push_back(ProbeEvent{querier, latency, ProbeOutcome::kHit});
  return t;
}

TEST(TraceSamplerTest, SampleEveryOneTracesEverything) {
  const TraceSampler sampler(1);
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_TRUE(sampler.ShouldTrace(Guid::FromSequence(i)));
  }
}

TEST(TraceSamplerTest, SamplingIsDeterministicAndRoughlyOneInN) {
  const TraceSampler sampler(8);
  const TraceSampler same(8);
  std::uint64_t sampled = 0;
  constexpr std::uint64_t kGuids = 4000;
  for (std::uint64_t i = 0; i < kGuids; ++i) {
    const Guid g = Guid::FromSequence(i);
    const bool traced = sampler.ShouldTrace(g);
    EXPECT_EQ(traced, same.ShouldTrace(g));  // pure function of the GUID
    sampled += traced ? 1 : 0;
  }
  // Binomial(4000, 1/8): mean 500, sd ~21. A wide band avoids flakes.
  EXPECT_GT(sampled, 350u);
  EXPECT_LT(sampled, 650u);
}

TEST(ProbeTracerTest, RecordsPerWorkerAndCounts) {
  ProbeTracer tracer(2);
  tracer.Record(0, MakeTrace(1, 10, 5.0));
  tracer.Record(1, MakeTrace(2, 20, 6.0));
  tracer.Record(1, MakeTrace(3, 30, 7.0));
  EXPECT_EQ(tracer.recorded(), 3u);
  EXPECT_EQ(tracer.Drain().size(), 3u);
  EXPECT_EQ(tracer.recorded(), 0u);  // drained
}

TEST(ProbeTracerTest, EnsureWorkersGrows) {
  ProbeTracer tracer(1);
  tracer.EnsureWorkers(4);
  EXPECT_EQ(tracer.num_workers(), 4u);
  tracer.Record(3, MakeTrace(9, 1, 1.0));
  EXPECT_EQ(tracer.recorded(), 1u);
}

TEST(ProbeTracerTest, DrainOrderIndependentOfRecordingWorker) {
  // The same trace set recorded under different worker assignments (the
  // scheduling-dependent part) must drain in the same canonical order and
  // export to identical bytes.
  std::vector<ProbeTrace> traces;
  for (std::uint64_t i = 0; i < 20; ++i) {
    traces.push_back(MakeTrace(1000 - i, AsId(i % 7), double(i) * 1.5));
  }
  auto drain = [&](unsigned workers, unsigned stride) {
    ProbeTracer tracer(workers);
    for (std::size_t i = 0; i < traces.size(); ++i) {
      tracer.Record(unsigned(i * stride) % workers, traces[i]);
    }
    return OpTraceCsv(tracer.Drain());
  };
  const std::string reference = drain(1, 1);
  EXPECT_EQ(drain(2, 1), reference);
  EXPECT_EQ(drain(4, 3), reference);
  EXPECT_EQ(drain(7, 5), reference);
}

TEST(OpTraceCsvTest, FormatsHeaderAndProbeEvents) {
  ProbeTrace t;
  t.op = 'V';
  t.guid_fp = 0xabcULL;
  t.querier = 42;
  t.found = true;
  t.local_won = false;
  t.latency_ms = 12.5;
  t.attempts = 2;
  t.hash_evaluations = 3;
  t.probes.push_back(ProbeEvent{7, 200.0, ProbeOutcome::kFailed});
  t.probes.push_back(ProbeEvent{9, 12.5, ProbeOutcome::kHit});
  const std::string csv = OpTraceCsv({t});
  EXPECT_NE(csv.find("op,guid_fp,querier,found,local_won,latency_ms,"
                     "queue_delay_ms,admission,attempts,hash_evaluations,"
                     "probes"),
            std::string::npos);
  EXPECT_NE(csv.find("V,0000000000000abc,42,1,0,12.500000,0.000000,served,"
                     "2,3,7:F:200.000000|9:H:12.500000"),
            std::string::npos);
}

}  // namespace
}  // namespace dmap
