#include "obs/metrics_registry.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "obs/export.h"

namespace dmap {
namespace {

TEST(MetricsRegistryTest, CountersMergeAcrossWorkers) {
  MetricsRegistry registry(3);
  const CounterId a = registry.Counter("a");
  const CounterId b = registry.Counter("b");
  registry.Add(a, 1, 0);
  registry.Add(a, 2, 1);
  registry.Add(a, 3, 2);
  registry.Add(b, 10, 1);

  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].name, "a");
  EXPECT_EQ(snapshot.counters[0].value, 6u);
  EXPECT_EQ(snapshot.counters[1].name, "b");
  EXPECT_EQ(snapshot.counters[1].value, 10u);
}

TEST(MetricsRegistryTest, RegistrationIsIdempotentByName) {
  MetricsRegistry registry;
  const CounterId a1 = registry.Counter("x");
  const CounterId a2 = registry.Counter("x");
  EXPECT_EQ(a1, a2);
  const HistogramId h1 =
      registry.Histogram("h", MetricsRegistry::LatencyBoundariesMs());
  const HistogramId h2 =
      registry.Histogram("h", MetricsRegistry::LatencyBoundariesMs());
  EXPECT_EQ(h1, h2);
}

TEST(MetricsRegistryTest, MismatchedReRegistrationThrows) {
  MetricsRegistry registry;
  registry.Counter("c", MetricStability::kDeterministic);
  EXPECT_THROW(registry.Counter("c", MetricStability::kExecution),
               std::invalid_argument);
  registry.Histogram("h", MetricsRegistry::LatencyBoundariesMs());
  EXPECT_THROW(
      registry.Histogram("h", MetricsRegistry::CountBoundaries()),
      std::invalid_argument);
}

TEST(MetricsRegistryTest, HistogramBucketsCountSumMinMax) {
  MetricsRegistry registry;
  const HistogramId h = registry.Histogram("h", {1.0, 2.0, 4.0});
  registry.Observe(h, 0.5, 0);   // bucket 0 (<= 1)
  registry.Observe(h, 2.0, 0);   // bucket 1 (<= 2)
  registry.Observe(h, 3.0, 0);   // bucket 2 (<= 4)
  registry.Observe(h, 100.0, 0); // overflow bucket

  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  const HistogramSnapshot& s = snapshot.histograms[0];
  ASSERT_EQ(s.buckets.size(), 4u);  // boundaries + overflow
  EXPECT_EQ(s.buckets[0], 1u);
  EXPECT_EQ(s.buckets[1], 1u);
  EXPECT_EQ(s.buckets[2], 1u);
  EXPECT_EQ(s.buckets[3], 1u);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.sum, 105.5);
  EXPECT_DOUBLE_EQ(s.min, 0.5);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
}

TEST(MetricsRegistryTest, EmptyHistogramReportsZeros) {
  MetricsRegistry registry;
  registry.Histogram("empty", {1.0});
  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].count, 0u);
  EXPECT_DOUBLE_EQ(snapshot.histograms[0].min, 0.0);
  EXPECT_DOUBLE_EQ(snapshot.histograms[0].max, 0.0);
}

TEST(MetricsRegistryTest, EnsureWorkersGrowsAndKeepsCounts) {
  MetricsRegistry registry(1);
  const CounterId a = registry.Counter("a");
  registry.Add(a, 5, 0);
  registry.EnsureWorkers(4);
  EXPECT_EQ(registry.num_workers(), 4u);
  registry.Add(a, 7, 3);
  EXPECT_EQ(registry.Snapshot().counters[0].value, 12u);
}

TEST(MetricsRegistryTest, SnapshotIsIdenticalForAnyWorkerSplit) {
  // The same multiset of observations, distributed over different worker
  // counts, must merge to byte-identical exports — the determinism contract
  // CI relies on. Latencies with fractional parts exercise the fixed-point
  // sum (plain double accumulation would depend on addition order).
  const std::vector<double> values = {0.125, 3.75, 17.3, 0.9,  42.0625,
                                      8.5,   1.1,  2.2,  33.3, 4.4};
  auto run = [&](unsigned workers) {
    MetricsRegistry registry(workers);
    const CounterId c = registry.Counter("ops");
    const HistogramId h =
        registry.Histogram("lat", MetricsRegistry::LatencyBoundariesMs());
    for (std::size_t i = 0; i < values.size(); ++i) {
      const unsigned w = unsigned(i % workers);
      registry.Add(c, 1, w);
      registry.Observe(h, values[i], w);
    }
    return MetricsSummaryJson(registry.Snapshot());
  };
  const std::string reference = run(1);
  EXPECT_EQ(run(2), reference);
  EXPECT_EQ(run(3), reference);
  EXPECT_EQ(run(7), reference);
}

TEST(MetricsRegistryTest, ExecutionMetricsExcludedFromDefaultExport) {
  MetricsRegistry registry;
  const CounterId det = registry.Counter("stable");
  const CounterId exec =
      registry.Counter("cache_hits", MetricStability::kExecution);
  registry.Add(det, 1, 0);
  registry.Add(exec, 99, 0);

  const MetricsSnapshot snapshot = registry.Snapshot();
  const std::string defaults = MetricsSummaryJson(snapshot);
  EXPECT_NE(defaults.find("stable"), std::string::npos);
  EXPECT_EQ(defaults.find("cache_hits"), std::string::npos);

  MetricsExportOptions all;
  all.include_execution = true;
  const std::string full = MetricsSummaryJson(snapshot, all);
  EXPECT_NE(full.find("cache_hits"), std::string::npos);

  const std::string csv = MetricsSummaryCsv(snapshot);
  EXPECT_EQ(csv.find("cache_hits"), std::string::npos);
}

TEST(MetricsRegistryTest, CsvListsCounterHistogramAndBucketRows) {
  MetricsRegistry registry;
  registry.Add(registry.Counter("ops"), 3, 0);
  const HistogramId h = registry.Histogram("lat", {1.0, 2.0});
  registry.Observe(h, 1.5, 0);
  const std::string csv = MetricsSummaryCsv(registry.Snapshot());
  EXPECT_NE(csv.find("counter,ops,,3"), std::string::npos);
  EXPECT_NE(csv.find("histogram,lat"), std::string::npos);
  EXPECT_NE(csv.find("bucket,lat"), std::string::npos);
}

TEST(MetricsRegistryTest, HistogramQuantileInterpolatesWithinBuckets) {
  EXPECT_DOUBLE_EQ(HistogramQuantile(HistogramSnapshot{}, 0.5), 0.0);

  MetricsRegistry registry;
  const HistogramId h = registry.Histogram("lat", {10.0, 20.0, 40.0});
  // 8 observations in (10, 20], 2 in (20, 40].
  for (int i = 0; i < 8; ++i) registry.Observe(h, 12.0 + double(i), 0);
  registry.Observe(h, 25.0, 0);
  registry.Observe(h, 39.0, 0);
  const HistogramSnapshot snapshot = registry.Snapshot().histograms.front();

  // p50: target rank 5 of 8 in the (10, 20] bucket — 10 + 10 * 5/8 = 16.25.
  EXPECT_DOUBLE_EQ(HistogramQuantile(snapshot, 0.5), 16.25);
  // p90: rank 9 lands 1/2 into the (20, 40] bucket = 30.
  EXPECT_DOUBLE_EQ(HistogramQuantile(snapshot, 0.9), 30.0);
  // The extremes clamp to the observed min and max, not the bucket edges.
  EXPECT_DOUBLE_EQ(HistogramQuantile(snapshot, 0.0), snapshot.min);
  EXPECT_DOUBLE_EQ(HistogramQuantile(snapshot, 1.0), snapshot.max);
  EXPECT_DOUBLE_EQ(snapshot.min, 12.0);
  EXPECT_DOUBLE_EQ(snapshot.max, 39.0);

  // Observations beyond the last boundary fall in the overflow bucket,
  // whose upper edge is the observed max.
  MetricsRegistry overflow;
  const HistogramId o = overflow.Histogram("lat", {10.0});
  overflow.Observe(o, 100.0, 0);
  overflow.Observe(o, 300.0, 0);
  const HistogramSnapshot tail = overflow.Snapshot().histograms.front();
  EXPECT_DOUBLE_EQ(HistogramQuantile(tail, 1.0), 300.0);
  EXPECT_GE(HistogramQuantile(tail, 0.75), 100.0);
}

TEST(MetricsRegistryTest, LatencyBoundariesAscendAndCoverTails) {
  const std::vector<double> b = MetricsRegistry::LatencyBoundariesMs();
  ASSERT_GE(b.size(), 4u);
  for (std::size_t i = 1; i < b.size(); ++i) EXPECT_GT(b[i], b[i - 1]);
  EXPECT_LT(b.front(), 1.0);      // sub-ms local hits
  EXPECT_GE(b.back(), 4000.0);    // multi-second pathological tails
}

}  // namespace
}  // namespace dmap
