#include "workload/workload.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <unordered_set>

#include "topo/generator.h"

namespace dmap {
namespace {

class WorkloadTest : public testing::Test {
 protected:
  WorkloadTest()
      : graph_(GenerateInternetTopology(ScaledTopologyParams(500, 31))) {}

  WorkloadParams Params(std::uint64_t guids = 1000) {
    WorkloadParams p;
    p.num_guids = guids;
    p.seed = 7;
    return p;
  }

  AsGraph graph_;
};

TEST_F(WorkloadTest, InsertsCoverEveryGuidOnce) {
  WorkloadGenerator gen(graph_, Params());
  const auto inserts = gen.Inserts();
  ASSERT_EQ(inserts.size(), 1000u);
  std::unordered_set<Guid, GuidHash> guids;
  for (const InsertOp& op : inserts) {
    EXPECT_LT(op.na.as, graph_.num_nodes());
    EXPECT_NE(op.na.locator, 0u);
    guids.insert(op.guid);
  }
  EXPECT_EQ(guids.size(), 1000u);  // all distinct
}

TEST_F(WorkloadTest, InsertsSortedBySource) {
  WorkloadGenerator gen(graph_, Params());
  const auto inserts = gen.Inserts(/*sort_by_source=*/true);
  EXPECT_TRUE(std::is_sorted(inserts.begin(), inserts.end(),
                             [](const InsertOp& a, const InsertOp& b) {
                               return a.na.as < b.na.as;
                             }));
}

TEST_F(WorkloadTest, LookupsTargetRegisteredGuids) {
  WorkloadGenerator gen(graph_, Params(100));
  gen.Inserts();
  std::unordered_set<Guid, GuidHash> registered;
  for (std::uint64_t i = 0; i < 100; ++i) registered.insert(gen.GuidAt(i));
  for (const LookupOp& op : gen.Lookups(5000)) {
    EXPECT_TRUE(registered.contains(op.guid));
    EXPECT_LT(op.source, graph_.num_nodes());
  }
}

TEST_F(WorkloadTest, PopularityIsSkewed) {
  WorkloadGenerator gen(graph_, Params(1000));
  std::map<Guid, int> counts;
  for (const LookupOp& op : gen.Lookups(50000, /*sort_by_source=*/false)) {
    ++counts[op.guid];
  }
  std::vector<int> sorted;
  for (const auto& [guid, count] : counts) sorted.push_back(count);
  std::sort(sorted.rbegin(), sorted.rend());
  // Mandelbrot-Zipf (alpha=1.02, q=100): the head is much hotter than the
  // tail but not single-GUID dominated (q flattens the peak).
  EXPECT_GT(sorted.front(), 5 * sorted.back());
  EXPECT_LT(double(sorted.front()) / 50000.0, 0.05);
}

TEST_F(WorkloadTest, SourcesFollowEndNodeWeights) {
  WorkloadGenerator gen(graph_, Params(100));
  gen.Inserts();
  // Find the heaviest and a light AS.
  AsId heavy = 0;
  for (AsId v = 1; v < graph_.num_nodes(); ++v) {
    if (graph_.EndNodeWeight(v) > graph_.EndNodeWeight(heavy)) heavy = v;
  }
  std::vector<int> counts(graph_.num_nodes(), 0);
  for (const LookupOp& op : gen.Lookups(100000, false)) ++counts[op.source];
  // The heaviest AS sources roughly its weight share of lookups.
  double total_weight = 0;
  for (AsId v = 0; v < graph_.num_nodes(); ++v) {
    total_weight += graph_.EndNodeWeight(v);
  }
  const double expected =
      graph_.EndNodeWeight(heavy) / total_weight * 100000.0;
  EXPECT_NEAR(counts[heavy], expected, expected * 0.2 + 20);
}

TEST_F(WorkloadTest, MovesChangeAttachment) {
  WorkloadGenerator gen(graph_, Params(50));
  gen.Inserts();
  const auto moves = gen.Moves(200);
  ASSERT_EQ(moves.size(), 200u);
  for (const MoveOp& op : moves) {
    EXPECT_LT(op.new_na.as, graph_.num_nodes());
  }
}

TEST_F(WorkloadTest, DeterministicForSeed) {
  WorkloadGenerator a(graph_, Params()), b(graph_, Params());
  const auto ia = a.Inserts();
  const auto ib = b.Inserts();
  for (std::size_t i = 0; i < ia.size(); ++i) {
    EXPECT_EQ(ia[i].guid, ib[i].guid);
    EXPECT_EQ(ia[i].na.as, ib[i].na.as);
  }
  const auto la = a.Lookups(100);
  const auto lb = b.Lookups(100);
  for (std::size_t i = 0; i < la.size(); ++i) {
    EXPECT_EQ(la[i].guid, lb[i].guid);
    EXPECT_EQ(la[i].source, lb[i].source);
  }
}

TEST_F(WorkloadTest, DifferentSeedsDifferentGuids) {
  WorkloadParams p2 = Params();
  p2.seed = 8;
  WorkloadGenerator a(graph_, Params()), b(graph_, p2);
  EXPECT_NE(a.GuidAt(0), b.GuidAt(0));
}

TEST_F(WorkloadTest, AttachmentOfTracksInsertsAndMoves) {
  WorkloadGenerator gen(graph_, Params(10));
  EXPECT_THROW(gen.AttachmentOf(0), std::out_of_range);
  const auto inserts = gen.Inserts(false);
  for (std::uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(gen.AttachmentOf(i), inserts[i].na.as);
  }
}

TEST_F(WorkloadTest, ValidationErrors) {
  EXPECT_THROW(WorkloadGenerator(graph_, WorkloadParams{.num_guids = 0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace dmap
