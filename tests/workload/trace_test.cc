#include "workload/trace.h"

#include <gtest/gtest.h>

#include <sstream>

#include "topo/generator.h"

namespace dmap {
namespace {

TEST(TraceTest, RoundTripAllOpKinds) {
  std::vector<TraceOp> ops;
  ops.emplace_back(InsertOp{Guid::FromSequence(1), NetworkAddress{10, 5}});
  ops.emplace_back(LookupOp{Guid::FromSequence(2), 77});
  ops.emplace_back(MoveOp{Guid::FromSequence(1), NetworkAddress{20, 6}});

  std::stringstream buffer;
  SaveTrace(ops, buffer);
  const auto loaded = LoadTrace(buffer);
  ASSERT_EQ(loaded.size(), 3u);

  const auto* insert = std::get_if<InsertOp>(&loaded[0]);
  ASSERT_NE(insert, nullptr);
  EXPECT_EQ(insert->guid, Guid::FromSequence(1));
  EXPECT_EQ(insert->na.as, 10u);
  EXPECT_EQ(insert->na.locator, 5u);

  const auto* lookup = std::get_if<LookupOp>(&loaded[1]);
  ASSERT_NE(lookup, nullptr);
  EXPECT_EQ(lookup->guid, Guid::FromSequence(2));
  EXPECT_EQ(lookup->source, 77u);

  const auto* move = std::get_if<MoveOp>(&loaded[2]);
  ASSERT_NE(move, nullptr);
  EXPECT_EQ(move->new_na.as, 20u);
}

TEST(TraceTest, EmptyTraceRoundTrips) {
  std::stringstream buffer;
  SaveTrace({}, buffer);
  EXPECT_TRUE(LoadTrace(buffer).empty());
}

TEST(TraceTest, GeneratedWorkloadRoundTrips) {
  const AsGraph graph =
      GenerateInternetTopology(ScaledTopologyParams(200, 1));
  WorkloadParams params;
  params.num_guids = 50;
  WorkloadGenerator gen(graph, params);

  std::vector<TraceOp> ops;
  for (const InsertOp& op : gen.Inserts()) ops.emplace_back(op);
  for (const LookupOp& op : gen.Lookups(500)) ops.emplace_back(op);

  std::stringstream buffer;
  SaveTrace(ops, buffer);
  const auto loaded = LoadTrace(buffer);
  ASSERT_EQ(loaded.size(), ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    EXPECT_EQ(loaded[i].index(), ops[i].index()) << "op " << i;
  }
}

TEST(TraceTest, RejectsBadMagic) {
  std::stringstream buffer("bogus\nI 00 1 2\n");
  EXPECT_THROW(LoadTrace(buffer), std::runtime_error);
}

TEST(TraceTest, RejectsBadGuid) {
  std::stringstream buffer("dmap-trace v1\nI nothex 1 2\n");
  EXPECT_THROW(LoadTrace(buffer), std::runtime_error);
}

TEST(TraceTest, RejectsUnknownKind) {
  std::stringstream buffer("dmap-trace v1\nX " + std::string(40, '0') +
                           " 1\n");
  EXPECT_THROW(LoadTrace(buffer), std::runtime_error);
}

TEST(TraceTest, RejectsTruncatedFields) {
  std::stringstream buffer("dmap-trace v1\nI " + std::string(40, '0') +
                           " 1\n");  // missing locator
  EXPECT_THROW(LoadTrace(buffer), std::runtime_error);
}

TEST(TraceTest, SkipsBlankLines) {
  std::stringstream buffer("dmap-trace v1\n\nL " + std::string(40, '0') +
                           " 3\n\n");
  const auto loaded = LoadTrace(buffer);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(std::get<LookupOp>(loaded[0]).source, 3u);
}

TEST(TraceTest, FileRoundTrip) {
  std::vector<TraceOp> ops;
  ops.emplace_back(LookupOp{Guid::FromSequence(5), 1});
  const std::string path = testing::TempDir() + "/trace_test.trace";
  SaveTraceToFile(ops, path);
  EXPECT_EQ(LoadTraceFromFile(path).size(), 1u);
  EXPECT_THROW(LoadTraceFromFile("/nonexistent/file.trace"),
               std::runtime_error);
}

}  // namespace
}  // namespace dmap
