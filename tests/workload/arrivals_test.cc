#include "workload/arrivals.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

#include "sim/environment.h"

namespace dmap {
namespace {

struct ArrivalsEnv {
  SimEnvironment env;
  WorkloadGenerator workload;
  ArrivalsEnv()
      : env(BuildEnvironment(EnvironmentParams::Scaled(300))),
        workload(env.graph, [] {
          WorkloadParams p;
          p.num_guids = 500;
          return p;
        }()) {}
};

ArrivalsEnv& Shared() {
  static ArrivalsEnv* shared = new ArrivalsEnv();
  return *shared;
}

bool SameStream(const std::vector<ArrivalOp>& a,
                const std::vector<ArrivalOp>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].time_ms != b[i].time_ms || !(a[i].guid == b[i].guid) ||
        a[i].source != b[i].source) {
      return false;
    }
  }
  return true;
}

TEST(ArrivalsTest, ValidatesParamsNamingTheField) {
  ArrivalsEnv& fixture = Shared();
  ArrivalParams params;
  params.base_rate_per_s = 0.0;
  try {
    OpenLoopArrivals bad(fixture.env.graph, fixture.workload, params);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("base_rate"), std::string::npos);
  }

  params = ArrivalParams{};
  params.diurnal_amplitude = 1.5;
  EXPECT_THROW(
      OpenLoopArrivals bad(fixture.env.graph, fixture.workload, params),
      std::invalid_argument);

  params = ArrivalParams{};
  params.hot_guids = 1'000'000;  // > num_guids
  EXPECT_THROW(
      OpenLoopArrivals bad(fixture.env.graph, fixture.workload, params),
      std::invalid_argument);
}

// The determinism contract: Generate() is pure. Repeated calls, fresh
// instances, and interleaving with other generators all produce the
// identical stream — so a harness can call it from any worker, any number
// of times, without results depending on thread count or call order.
TEST(ArrivalsTest, GenerateIsPureAcrossInstancesAndCallOrder) {
  ArrivalsEnv& fixture = Shared();
  ArrivalParams params;
  params.base_rate_per_s = 2000.0;
  params.horizon_s = 2.0;
  params.seed = 9;

  const OpenLoopArrivals a(fixture.env.graph, fixture.workload, params);
  const std::vector<ArrivalOp> first = a.Generate();
  EXPECT_TRUE(SameStream(first, a.Generate()));  // repeat call

  // Fresh instance, with an unrelated generation in between.
  ArrivalParams other = params;
  other.seed = 10;
  const OpenLoopArrivals noise(fixture.env.graph, fixture.workload, other);
  (void)noise.Generate();
  const OpenLoopArrivals b(fixture.env.graph, fixture.workload, params);
  EXPECT_TRUE(SameStream(first, b.Generate()));

  // A different seed moves the stream.
  EXPECT_FALSE(SameStream(first, noise.Generate()));
}

TEST(ArrivalsTest, StreamIsSortedAndRoughlyPoisson) {
  ArrivalsEnv& fixture = Shared();
  ArrivalParams params;
  params.base_rate_per_s = 5000.0;
  params.horizon_s = 4.0;
  const OpenLoopArrivals gen(fixture.env.graph, fixture.workload, params);
  const std::vector<ArrivalOp> ops = gen.Generate();

  EXPECT_TRUE(std::is_sorted(ops.begin(), ops.end(),
                             [](const ArrivalOp& x, const ArrivalOp& y) {
                               return x.time_ms < y.time_ms;
                             }));
  for (const ArrivalOp& op : ops) {
    EXPECT_GE(op.time_ms, 0.0);
    EXPECT_LT(op.time_ms, params.horizon_s * 1000.0);
  }
  // Count within 5 sigma of the Poisson mean (sigma = sqrt(mean)).
  const double mean = params.base_rate_per_s * params.horizon_s;
  EXPECT_NEAR(double(ops.size()), mean, 5.0 * std::sqrt(mean));
}

TEST(ArrivalsTest, DiurnalModulationShiftsMassBetweenHalves) {
  ArrivalsEnv& fixture = Shared();
  ArrivalParams params;
  params.base_rate_per_s = 5000.0;
  params.horizon_s = 4.0;
  params.diurnal_amplitude = 0.9;
  params.diurnal_period_s = 4.0;  // one full cycle over the horizon
  const OpenLoopArrivals gen(fixture.env.graph, fixture.workload, params);
  const std::vector<ArrivalOp> ops = gen.Generate();

  // First half-period runs at 1 + 0.9 sin(...) >= 1, second half <= 1.
  std::size_t first_half = 0;
  for (const ArrivalOp& op : ops) {
    if (op.time_ms < 2000.0) ++first_half;
  }
  EXPECT_GT(double(first_half), 1.5 * double(ops.size() - first_half));
}

TEST(ArrivalsTest, FlashCrowdConcentratesOnHotRanksDuringWindow) {
  ArrivalsEnv& fixture = Shared();
  ArrivalParams params;
  params.base_rate_per_s = 2000.0;
  params.horizon_s = 3.0;
  params.burst_start_s = 1.0;
  params.burst_duration_s = 1.0;
  params.burst_multiplier = 3.0;
  params.hot_guids = 4;
  params.burst_hot_fraction = 1.0;  // every burst arrival targets the head
  const OpenLoopArrivals gen(fixture.env.graph, fixture.workload, params);
  const std::vector<ArrivalOp> ops = gen.Generate();

  std::set<Guid> hot;
  for (std::uint64_t rank = 1; rank <= params.hot_guids; ++rank) {
    hot.insert(fixture.workload.GuidAtPopularityRank(rank));
  }
  std::size_t in_window = 0, in_window_hot = 0, outside = 0;
  for (const ArrivalOp& op : ops) {
    const bool window = op.time_ms >= 1000.0 && op.time_ms < 2000.0;
    if (window) {
      ++in_window;
      if (hot.count(op.guid) > 0) ++in_window_hot;
    } else {
      ++outside;
    }
  }
  // The burst triples the in-window rate: the 1 s window outweighs the
  // 2 s remainder.
  EXPECT_GT(in_window, outside);
  // And with hot_fraction = 1 every window arrival is a hot-rank GUID.
  EXPECT_EQ(in_window_hot, in_window);
}

}  // namespace
}  // namespace dmap
