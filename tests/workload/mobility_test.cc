#include "workload/mobility.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/environment.h"

namespace dmap {
namespace {

class MobilityWorkloadTest : public testing::Test {
 protected:
  MobilityWorkloadTest()
      : env_(BuildEnvironment(EnvironmentParams::Scaled(300, 71))) {}

  MobilityParams Params() const {
    MobilityParams p;
    p.num_hosts = 30;
    p.guids_per_host = 5;
    p.handoff_rate_hz = 2.0;
    p.horizon_s = 4.0;
    p.seed = 9;
    return p;
  }

  SimEnvironment env_;
};

TEST_F(MobilityWorkloadTest, ValidateRejectsBadParams) {
  for (auto mutate : {
           +[](MobilityParams& p) { p.num_hosts = 0; },
           +[](MobilityParams& p) { p.guids_per_host = 0; },
           +[](MobilityParams& p) { p.handoff_rate_hz = -1.0; },
           +[](MobilityParams& p) { p.horizon_s = 0.0; },
       }) {
    MobilityParams p = Params();
    mutate(p);
    EXPECT_THROW(p.Validate(), std::invalid_argument);
  }
  EXPECT_NO_THROW(Params().Validate());
}

TEST_F(MobilityWorkloadTest, ScheduleIsAPureFunctionOfParams) {
  const MobilityWorkload a(env_.graph, Params());
  const MobilityWorkload b(env_.graph, Params());
  ASSERT_EQ(a.Handoffs().size(), b.Handoffs().size());
  ASSERT_FALSE(a.Handoffs().empty());
  for (std::size_t i = 0; i < a.Handoffs().size(); ++i) {
    const Handoff& x = a.Handoffs()[i];
    const Handoff& y = b.Handoffs()[i];
    EXPECT_EQ(x.at.millis(), y.at.millis());
    EXPECT_EQ(x.host, y.host);
    EXPECT_EQ(x.seq, y.seq);
    EXPECT_EQ(x.from_as, y.from_as);
    EXPECT_EQ(x.to_as, y.to_as);
  }
  const auto inserts_a = a.InitialInserts();
  const auto inserts_b = b.InitialInserts();
  ASSERT_EQ(inserts_a.size(), inserts_b.size());
  for (std::size_t i = 0; i < inserts_a.size(); ++i) {
    EXPECT_EQ(inserts_a[i].guid, inserts_b[i].guid);
    EXPECT_EQ(inserts_a[i].na, inserts_b[i].na);
  }
}

TEST_F(MobilityWorkloadTest, SeedsProduceDisjointSchedules) {
  MobilityParams other = Params();
  other.seed = 10;
  const MobilityWorkload a(env_.graph, Params());
  const MobilityWorkload b(env_.graph, other);
  // GUID spaces are disjoint across seeds.
  EXPECT_NE(a.GuidOf(0, 0), b.GuidOf(0, 0));
  // The schedules differ somewhere (overwhelmingly likely).
  bool differs = a.Handoffs().size() != b.Handoffs().size();
  for (std::size_t i = 0;
       !differs && i < a.Handoffs().size() && i < b.Handoffs().size(); ++i) {
    differs = a.Handoffs()[i].at.millis() != b.Handoffs()[i].at.millis() ||
              a.Handoffs()[i].host != b.Handoffs()[i].host;
  }
  EXPECT_TRUE(differs);
}

TEST_F(MobilityWorkloadTest, HostStreamsAreIndependent) {
  // Growing the population must not perturb the existing hosts' streams:
  // every random choice derives from (seed, host), never from a shared
  // generator whose state the new hosts would advance.
  MobilityParams bigger = Params();
  bigger.num_hosts = Params().num_hosts * 2;
  const MobilityWorkload small(env_.graph, Params());
  const MobilityWorkload big(env_.graph, bigger);
  for (std::uint32_t host = 0; host < Params().num_hosts; ++host) {
    EXPECT_EQ(small.InitialAsOf(host), big.InitialAsOf(host));
    EXPECT_EQ(small.GuidOf(host, 0), big.GuidOf(host, 0));
  }
  for (const Handoff& handoff : small.Handoffs()) {
    bool found = false;
    for (const Handoff& other : big.Handoffs()) {
      if (other.host == handoff.host && other.seq == handoff.seq) {
        EXPECT_EQ(other.at.millis(), handoff.at.millis());
        EXPECT_EQ(other.from_as, handoff.from_as);
        EXPECT_EQ(other.to_as, handoff.to_as);
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "host " << handoff.host << " seq " << handoff.seq;
  }
}

TEST_F(MobilityWorkloadTest, HandoffsSortedAndChained) {
  const MobilityWorkload workload(env_.graph, Params());
  const auto& handoffs = workload.Handoffs();
  for (std::size_t i = 1; i < handoffs.size(); ++i) {
    const bool ordered =
        handoffs[i - 1].at < handoffs[i].at ||
        (handoffs[i - 1].at.millis() == handoffs[i].at.millis() &&
         handoffs[i - 1].host <= handoffs[i].host);
    EXPECT_TRUE(ordered) << "index " << i;
  }
  // Per host: seq starts at 1, increments, and chains from_as -> to_as
  // starting at the initial attachment.
  for (std::uint32_t host = 0; host < Params().num_hosts; ++host) {
    std::uint32_t expected_seq = 1;
    AsId at = workload.InitialAsOf(host);
    for (const Handoff& handoff : handoffs) {
      if (handoff.host != host) continue;
      EXPECT_EQ(handoff.seq, expected_seq++);
      EXPECT_EQ(handoff.from_as, at);
      // Same-AS re-attachment is allowed (the locator still changes), but
      // the destination must be a real AS.
      EXPECT_LT(handoff.to_as, env_.graph.num_nodes());
      at = handoff.to_as;
      EXPECT_GE(handoff.at.millis(), 0.0);
      EXPECT_LE(handoff.at.millis(), Params().horizon_s * 1000.0);
    }
  }
}

TEST_F(MobilityWorkloadTest, MovesForCoversEveryGuidAtTheNewAs) {
  const MobilityWorkload workload(env_.graph, Params());
  ASSERT_FALSE(workload.Handoffs().empty());
  const Handoff& handoff = workload.Handoffs().front();
  const auto moves = workload.MovesFor(handoff);
  ASSERT_EQ(moves.size(), std::size_t(Params().guids_per_host));
  for (std::uint32_t i = 0; i < Params().guids_per_host; ++i) {
    EXPECT_EQ(moves[i].first, workload.GuidOf(handoff.host, i));
    EXPECT_EQ(moves[i].second.as, handoff.to_as);
  }
  // Locators are fresh per handoff: the same host's GUID carries a new
  // locator after the move (it re-attached at a new gateway).
  const auto initial = workload.InitialInserts();
  const std::size_t base =
      std::size_t(handoff.host) * Params().guids_per_host;
  EXPECT_NE(moves[0].second.locator, initial[base].na.locator);
}

}  // namespace
}  // namespace dmap
