#include "analysis/jellyfish_model.h"

#include <gtest/gtest.h>

#include "topo/generator.h"

namespace dmap {
namespace {

TEST(LayerModelTest, ValidatesRatios) {
  EXPECT_THROW(LayerModel({}), std::invalid_argument);
  EXPECT_THROW(LayerModel({0.5, 0.4}), std::invalid_argument);   // sum != 1
  EXPECT_THROW(LayerModel({1.5, -0.5}), std::invalid_argument);  // negative
  EXPECT_NO_THROW(LayerModel({0.25, 0.75}));
}

TEST(LayerModelTest, TailProbabilityProperties) {
  const LayerModel model({0.1, 0.2, 0.4, 0.3});
  // l - j <= 0 degenerates to 1 (no information).
  EXPECT_DOUBLE_EQ(model.TailProbability(2, 1), 1.0);
  EXPECT_DOUBLE_EQ(model.TailProbability(0, 0), 1.0);
  // p_{0,1} = r_1 + r_2 + r_3.
  EXPECT_NEAR(model.TailProbability(0, 1), 0.9, 1e-12);
  // p_{0,3} = r_3.
  EXPECT_NEAR(model.TailProbability(0, 3), 0.3, 1e-12);
  // Beyond the last layer the tail vanishes.
  EXPECT_DOUBLE_EQ(model.TailProbability(0, 4), 0.0);
  // Monotone non-increasing in l.
  for (int l = 1; l < 7; ++l) {
    EXPECT_GE(model.TailProbability(1, l), model.TailProbability(1, l + 1));
  }
}

TEST(LayerModelTest, CdfBoundIncreasesWithLAndK) {
  const LayerModel model = PresentInternetModel();
  for (int k : {1, 3, 5}) {
    for (int l = 1; l < 14; ++l) {
      EXPECT_LE(model.MinDistanceCdfLowerBound(l, k),
                model.MinDistanceCdfLowerBound(l + 1, k) + 1e-12);
    }
  }
  for (int l = 2; l < 10; ++l) {
    EXPECT_LE(model.MinDistanceCdfLowerBound(l, 1),
              model.MinDistanceCdfLowerBound(l, 5) + 1e-12);
  }
}

TEST(LayerModelTest, MoreReplicasReduceExpectedDistance) {
  const LayerModel model = PresentInternetModel();
  double previous = 1e18;
  for (int k = 1; k <= 20; ++k) {
    const double bound = model.ExpectedMinDistanceUpperBound(k);
    EXPECT_LT(bound, previous) << "k=" << k;
    previous = bound;
  }
}

TEST(LayerModelTest, DiminishingReturns) {
  // Figure 7's key qualitative claim: the marginal gain of a replica
  // shrinks rapidly after the first few.
  const LayerModel model = PresentInternetModel();
  const double gain_1_2 = model.ExpectedMinDistanceUpperBound(1) -
                          model.ExpectedMinDistanceUpperBound(2);
  const double gain_10_11 = model.ExpectedMinDistanceUpperBound(10) -
                            model.ExpectedMinDistanceUpperBound(11);
  EXPECT_GT(gain_1_2, 10 * gain_10_11);
}

TEST(LayerModelTest, FlatterFutureInternetIsFaster) {
  // Figure 7: medium- and long-term models give lower bounds than today's.
  const LayerModel present = PresentInternetModel();
  const LayerModel medium = MediumTermInternetModel();
  const LayerModel lng = LongTermInternetModel();
  for (int k : {1, 5, 10, 20}) {
    const double p = present.ResponseTimeUpperBoundMs(k);
    const double m = medium.ResponseTimeUpperBoundMs(k);
    const double l = lng.ResponseTimeUpperBoundMs(k);
    EXPECT_LT(m, p) << "k=" << k;
    EXPECT_LT(l, m) << "k=" << k;
  }
}

TEST(LayerModelTest, ResponseBoundInPaperRange) {
  // Figure 7 plots ~50-100 ms across scenarios and K values with
  // c0 = 10.6, c1 = 8.3.
  const LayerModel present = PresentInternetModel();
  for (int k = 2; k <= 20; ++k) {
    const double bound = present.ResponseTimeUpperBoundMs(k);
    EXPECT_GT(bound, 30.0) << "k=" << k;
    EXPECT_LT(bound, 110.0) << "k=" << k;
  }
}

TEST(LayerModelTest, InvalidKThrows) {
  EXPECT_THROW(PresentInternetModel().ExpectedMinDistanceUpperBound(0),
               std::invalid_argument);
}

TEST(LayerModelTest, FromDecompositionOfGeneratedTopology) {
  const AsGraph g = GenerateInternetTopology(ScaledTopologyParams(2000, 13));
  const LayerModel model =
      LayerModel::FromDecomposition(DecomposeJellyfish(g));
  EXPECT_GE(model.num_layers(), 2);
  // Bound behaves sanely on a measured decomposition too.
  EXPECT_GT(model.ExpectedMinDistanceUpperBound(1), 0.0);
  EXPECT_LT(model.ExpectedMinDistanceUpperBound(5),
            model.ExpectedMinDistanceUpperBound(1));
}

// Cross-validation of the Section V formula against a Monte Carlo estimate
// of the exact random experiment it describes (worst-case distance
// d = layer(s) + layer(t) + 1, layer-proportional draws).
//
// Reproduction note: the paper sums the tail bound for l = 1 .. 2N-1,
// omitting the always-true l = 0 term Pr[min d > 0] = 1 (the identity is
// E[D] = sum_{l >= 0} Pr[D > l]). Its expression therefore equals
// E[min d] - 1 under the worst-case distance model; the affine calibration
// (c0, c1) against measured latencies absorbs the constant shift, so
// Figure 7 is unaffected. We implement the paper's formula verbatim and
// assert the relationship simulated ~= bound + 1 here.
class BoundVsMonteCarloTest
    : public testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BoundVsMonteCarloTest, FormulaMatchesSimulationShiftedByOne) {
  const auto [scenario, k] = GetParam();
  const LayerModel model = scenario == 0   ? PresentInternetModel()
                           : scenario == 1 ? MediumTermInternetModel()
                                           : LongTermInternetModel();
  Rng rng(std::uint64_t(scenario) * 100 + std::uint64_t(k));
  const double simulated =
      SimulateExpectedMinDistance(model, k, 200000, rng);
  const double bound = model.ExpectedMinDistanceUpperBound(k);
  EXPECT_LE(simulated, bound + 1.0 + 0.02) << "paper formula violated";
  EXPECT_GE(simulated, bound + 1.0 - 0.02)
      << "tail bounds are exact under the worst-case distance model, so "
         "the match should be tight";
}

INSTANTIATE_TEST_SUITE_P(
    ScenariosAndK, BoundVsMonteCarloTest,
    testing::Combine(testing::Values(0, 1, 2), testing::Values(1, 3, 5, 10)));

TEST(SimulateExpectedMinDistanceTest, Validation) {
  Rng rng(1);
  EXPECT_THROW(SimulateExpectedMinDistance(PresentInternetModel(), 0, 100,
                                           rng),
               std::invalid_argument);
  EXPECT_THROW(SimulateExpectedMinDistance(PresentInternetModel(), 1, 0,
                                           rng),
               std::invalid_argument);
}

TEST(FitLinearTest, RecoversKnownLine) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  std::vector<double> ys;
  for (const double x : xs) ys.push_back(10.6 * x + 8.3);
  const auto [c0, c1] = FitLinear(xs, ys);
  EXPECT_NEAR(c0, 10.6, 1e-9);
  EXPECT_NEAR(c1, 8.3, 1e-9);
}

TEST(FitLinearTest, Validation) {
  EXPECT_THROW(FitLinear(std::vector<double>{1.0},
                         std::vector<double>{2.0}),
               std::invalid_argument);
  EXPECT_THROW(FitLinear(std::vector<double>{1, 2},
                         std::vector<double>{1}),
               std::invalid_argument);
  EXPECT_THROW(FitLinear(std::vector<double>{3, 3, 3},
                         std::vector<double>{1, 2, 3}),
               std::invalid_argument);
}

}  // namespace
}  // namespace dmap
