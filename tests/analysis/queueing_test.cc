#include "analysis/queueing.h"

#include <gtest/gtest.h>

#include <cmath>

namespace dmap {
namespace {

TEST(MM1Test, KnownValues) {
  // lambda = 300k/s, mu = 500k/s: rho = 0.6, W = 1/200k s = 5 us.
  const MM1Stats s = AnalyzeMM1(300'000, 500'000);
  EXPECT_TRUE(s.stable);
  EXPECT_DOUBLE_EQ(s.utilization, 0.6);
  EXPECT_NEAR(s.mean_sojourn_ms, 0.005, 1e-9);
  EXPECT_NEAR(s.p95_sojourn_ms, -std::log(0.05) * 0.005, 1e-9);
}

TEST(MM1Test, OverloadIsUnstable) {
  const MM1Stats s = AnalyzeMM1(600'000, 500'000);
  EXPECT_FALSE(s.stable);
  EXPECT_GT(s.utilization, 1.0);
  EXPECT_TRUE(std::isinf(s.mean_sojourn_ms));
}

TEST(MM1Test, ZeroArrivalsIsPureService) {
  const MM1Stats s = AnalyzeMM1(0, 500'000);
  EXPECT_TRUE(s.stable);
  EXPECT_NEAR(s.mean_sojourn_ms, 0.002, 1e-9);  // 1/mu
}

TEST(MM1Test, Validation) {
  EXPECT_THROW(AnalyzeMM1(1, 0), std::invalid_argument);
  EXPECT_THROW(AnalyzeMM1(-1, 10), std::invalid_argument);
}

TEST(ServerLoadTest, PaperScaleIsComfortablyNegligible) {
  // Section IV-B's assumption, quantified: at the paper's update rate and
  // a 1M queries/s global stream over 26,424 ASs, even the hottest server
  // (NLR 1.6) sits at trivial utilization and sub-millisecond p95.
  const std::vector<double> nlr{0.8, 0.9, 1.0, 1.1, 1.6};
  ServerLoadParams params;
  const ServerLoadReport r = AnalyzeServerLoad(params, nlr, 26424);
  EXPECT_TRUE(r.mean_server.stable);
  EXPECT_TRUE(r.hottest_server.stable);
  EXPECT_LT(r.hottest_server.utilization, 0.01);
  EXPECT_LT(r.hottest_server.p95_sojourn_ms, 0.01);
  // And there is enormous headroom before the 1 ms p95 line.
  EXPECT_GT(r.max_global_queries_per_s, 1e9);
}

TEST(ServerLoadTest, HotterNlrMeansHotterServer) {
  ServerLoadParams params;
  const std::vector<double> flat{1.0, 1.0, 1.0};
  const std::vector<double> skewed{0.5, 1.0, 4.0};
  const auto r_flat = AnalyzeServerLoad(params, flat, 1000);
  const auto r_skew = AnalyzeServerLoad(params, skewed, 1000);
  EXPECT_GT(r_skew.max_arrival_per_s, r_flat.max_arrival_per_s * 2);
  EXPECT_LT(r_skew.max_global_queries_per_s,
            r_flat.max_global_queries_per_s);
}

TEST(ServerLoadTest, UpdatesScaleWithReplicas) {
  ServerLoadParams k1;
  k1.replicas = 1;
  ServerLoadParams k5;
  k5.replicas = 5;
  const std::vector<double> nlr{1.0};
  const auto r1 = AnalyzeServerLoad(k1, nlr, 1000);
  const auto r5 = AnalyzeServerLoad(k5, nlr, 1000);
  const double updates1 = r1.mean_arrival_per_s - k1.global_queries_per_s / 1000;
  const double updates5 = r5.mean_arrival_per_s - k5.global_queries_per_s / 1000;
  EXPECT_NEAR(updates5, 5 * updates1, updates1 * 1e-9);
}

TEST(ServerLoadTest, Validation) {
  const std::vector<double> nlr{1.0};
  EXPECT_THROW(AnalyzeServerLoad(ServerLoadParams{}, nlr, 0),
               std::invalid_argument);
  EXPECT_THROW(AnalyzeServerLoad(ServerLoadParams{}, {}, 10),
               std::invalid_argument);
  const std::vector<double> bad{0.0, 0.0};
  EXPECT_THROW(AnalyzeServerLoad(ServerLoadParams{}, bad, 10),
               std::invalid_argument);
}

}  // namespace
}  // namespace dmap
