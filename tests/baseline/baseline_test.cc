#include <gtest/gtest.h>

#include <cmath>

#include "baseline/central_directory.h"
#include "baseline/chord_dht.h"
#include "baseline/home_agent.h"
#include "baseline/resolver.h"
#include "sim/environment.h"

namespace dmap {
namespace {

class BaselineTest : public testing::Test {
 protected:
  BaselineTest()
      : env_(BuildEnvironment(EnvironmentParams::Scaled(400))),
        oracle_(env_.graph) {}

  SimEnvironment env_;
  PathOracle oracle_;
};

TEST_F(BaselineTest, ChordStoresAtSuccessorAndResolves) {
  ChordDht dht(env_.graph, oracle_);
  const Guid g = Guid::FromSequence(1);
  const UpdateResult up = dht.Insert(g, NetworkAddress{10, 1});
  EXPECT_EQ(up.replicas.size(), 1u);
  EXPECT_EQ(up.replicas[0], dht.OwnerOf(g));
  const LookupResult r = dht.Lookup(g, 200);
  ASSERT_TRUE(r.found);
  EXPECT_TRUE(r.nas.AttachedTo(10));
  EXPECT_EQ(r.serving_as, dht.OwnerOf(g));
}

TEST_F(BaselineTest, ChordUnknownGuidStillPaysRouting) {
  ChordDht dht(env_.graph, oracle_);
  const LookupResult r = dht.Lookup(Guid::FromSequence(2), 100);
  EXPECT_FALSE(r.found);
  EXPECT_GT(r.latency_ms, 0.0);
}

TEST_F(BaselineTest, ChordRouteIsLogarithmic) {
  ChordDht dht(env_.graph, oracle_);
  // log2(400) ~ 8.6; the positional-finger walk takes at most ~2 log2 N.
  double total_hops = 0;
  constexpr int kTrials = 200;
  for (int i = 0; i < kTrials; ++i) {
    const Guid g = Guid::FromSequence(std::uint64_t(i));
    const auto route = dht.Route(AsId(i % 400), g.Fingerprint64());
    EXPECT_LE(route.size(), 2 * std::size_t(std::log2(400)) + 2);
    EXPECT_EQ(route.back(), dht.OwnerOf(g));
    total_hops += double(route.size());
  }
  EXPECT_GT(total_hops / kTrials, 3.0);  // genuinely multi-hop on average
}

TEST_F(BaselineTest, ChordRouteFromOwnerIsDirect) {
  ChordDht dht(env_.graph, oracle_);
  const Guid g = Guid::FromSequence(3);
  const AsId owner = dht.OwnerOf(g);
  const auto route = dht.Route(owner, g.Fingerprint64());
  EXPECT_EQ(route.size(), 1u);
  EXPECT_EQ(route.back(), owner);
}

TEST_F(BaselineTest, ChordLookupSlowerThanDirectRtt) {
  // The DHT's multi-hop cost must exceed the one-hop RTT to the owner —
  // the gap DMap's single-overlay-hop design eliminates.
  ChordDht dht(env_.graph, oracle_);
  const Guid g = Guid::FromSequence(4);
  (void)dht.Insert(g, NetworkAddress{10, 1});
  const AsId querier = 333;
  const LookupResult r = dht.Lookup(g, querier);
  const double direct = oracle_.RttMs(querier, dht.OwnerOf(g));
  EXPECT_GE(r.latency_ms, direct);
}

TEST_F(BaselineTest, HomeAgentPinsHomeAtFirstInsert) {
  HomeAgent agent(oracle_);
  const Guid g = Guid::FromSequence(5);
  (void)agent.Insert(g, NetworkAddress{10, 1});
  EXPECT_EQ(agent.HomeOf(g), 10u);
  // The host moves; home stays.
  (void)agent.Update(g, NetworkAddress{300, 2});
  EXPECT_EQ(agent.HomeOf(g), 10u);
  const LookupResult r = agent.Lookup(g, 250);
  ASSERT_TRUE(r.found);
  EXPECT_TRUE(r.nas.AttachedTo(300));
  EXPECT_EQ(r.serving_as, 10u);
  EXPECT_DOUBLE_EQ(r.latency_ms, oracle_.RttMs(250, 10));
}

TEST_F(BaselineTest, HomeAgentUpdateOfUnknownThrows) {
  HomeAgent agent(oracle_);
  EXPECT_THROW(agent.Update(Guid::FromSequence(6), NetworkAddress{1, 1}),
               std::invalid_argument);
  EXPECT_EQ(agent.HomeOf(Guid::FromSequence(6)), kInvalidAs);
}

TEST_F(BaselineTest, CentralDirectoryAlwaysHitsServer) {
  CentralDirectory central(oracle_, 0);
  const Guid g = Guid::FromSequence(7);
  const UpdateResult up = central.Insert(g, NetworkAddress{100, 1});
  EXPECT_DOUBLE_EQ(up.latency_ms, oracle_.RttMs(100, 0));
  const LookupResult r = central.Lookup(g, 399);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.serving_as, 0u);
  EXPECT_DOUBLE_EQ(r.latency_ms, oracle_.RttMs(399, 0));
  EXPECT_FALSE(central.Lookup(Guid::FromSequence(8), 399).found);
}

TEST_F(BaselineTest, PolymorphicUseThroughInterface) {
  DMapOptions options;
  options.k = 3;
  std::vector<std::unique_ptr<NameResolver>> resolvers;
  resolvers.push_back(
      std::make_unique<DMapResolver>(env_.graph, env_.table, options));
  resolvers.push_back(std::make_unique<ChordDht>(env_.graph, oracle_));
  resolvers.push_back(std::make_unique<HomeAgent>(oracle_));
  resolvers.push_back(std::make_unique<CentralDirectory>(oracle_, 0));

  const Guid g = Guid::FromSequence(9);
  for (const auto& resolver : resolvers) {
    resolver->Insert(g, NetworkAddress{50, 1});
    const LookupResult r = resolver->Lookup(g, 200);
    ASSERT_TRUE(r.found) << resolver->name();
    EXPECT_TRUE(r.nas.AttachedTo(50)) << resolver->name();
    EXPECT_FALSE(resolver->name().empty());
  }
}

}  // namespace
}  // namespace dmap
