// Cross-backend contract suite: every NameResolver backend — DMap and the
// three related-work baselines — must present the same verb semantics
// (DESIGN.md §3 and §6), so the comparison harnesses can swap schemes
// without scheme-specific glue. Parametrized over backend factories; any
// new backend joins by adding a factory line.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "baseline/central_directory.h"
#include "baseline/chord_dht.h"
#include "baseline/home_agent.h"
#include "baseline/resolver.h"
#include "obs/export.h"
#include "obs/metrics_registry.h"
#include "obs/probe_trace.h"
#include "sim/environment.h"

namespace dmap {
namespace {

struct ContractEnv {
  SimEnvironment env;
  PathOracle oracle;
  ContractEnv()
      : env(BuildEnvironment(EnvironmentParams::Scaled(400))),
        oracle(env.graph) {}
};

// One topology shared by every case: the contract is about verb semantics,
// not placement, and environment builds dominate the suite's runtime.
ContractEnv& SharedEnv() {
  static ContractEnv* shared = new ContractEnv();
  return *shared;
}

struct BackendCase {
  const char* label;
  std::function<std::unique_ptr<NameResolver>(ContractEnv&)> make;
};

void PrintTo(const BackendCase& c, std::ostream* os) { *os << c.label; }

class ResolverContractTest : public testing::TestWithParam<BackendCase> {
 protected:
  ResolverContractTest() : resolver_(GetParam().make(SharedEnv())) {}

  std::unique_ptr<NameResolver> resolver_;
};

TEST_P(ResolverContractTest, InsertLookupUpdateLookupDeregisterMiss) {
  NameResolver& r = *resolver_;
  const Guid g = Guid::FromSequence(42);
  const AsId querier = 123;

  const UpdateResult inserted = r.Insert(g, NetworkAddress{10, 1});
  EXPECT_GE(inserted.attempts, 1);

  LookupResult found = r.Lookup(g, querier);
  ASSERT_TRUE(found.found);
  EXPECT_TRUE(found.nas.AttachedTo(10));

  r.Update(g, NetworkAddress{20, 2});
  found = r.Lookup(g, querier);
  ASSERT_TRUE(found.found);
  EXPECT_TRUE(found.nas.AttachedTo(20));
  EXPECT_FALSE(found.nas.AttachedTo(10));

  EXPECT_TRUE(r.Deregister(g));
  const LookupResult miss = r.Lookup(g, querier);
  EXPECT_FALSE(miss.found);
  EXPECT_FALSE(r.Deregister(g));  // already gone
}

TEST_P(ResolverContractTest, LookupOutcomeInvariants) {
  NameResolver& r = *resolver_;
  const Guid known = Guid::FromSequence(7);
  r.Insert(known, NetworkAddress{30, 1});
  for (const Guid& g : {known, Guid::FromSequence(8)}) {
    for (const AsId querier : {AsId(5), AsId(250)}) {
      const LookupResult result = r.Lookup(g, querier);
      EXPECT_GE(result.attempts, 1);
      EXPECT_GE(result.latency_ms, 0.0);
      if (result.served_locally) {
        EXPECT_TRUE(result.found);
      }
    }
  }
}

// None of the closed-form backends model server capacity, so all of them
// must report the uniform serving-tier defaults — zero queue delay, a
// served admission — on hits and misses alike. Only the executors with a
// ServingTier installed may ever report anything else.
TEST_P(ResolverContractTest, AdmissionDefaultsToZeroDelayServed) {
  NameResolver& r = *resolver_;
  const Guid known = Guid::FromSequence(17);
  const UpdateResult inserted = r.Insert(known, NetworkAddress{40, 1});
  EXPECT_DOUBLE_EQ(inserted.queue_delay_ms, 0.0);
  EXPECT_EQ(inserted.admission, AdmissionOutcome::kServed);
  for (const Guid& g : {known, Guid::FromSequence(18)}) {
    const LookupResult result = r.Lookup(g, 99);
    EXPECT_DOUBLE_EQ(result.queue_delay_ms, 0.0);
    EXPECT_EQ(result.admission, AdmissionOutcome::kServed);
  }
}

TEST_P(ResolverContractTest, UpdateOfUnknownGuidThrows) {
  EXPECT_THROW(resolver_->Update(Guid::FromSequence(999),
                                 NetworkAddress{1, 1}),
               std::invalid_argument);
}

TEST_P(ResolverContractTest, AddAttachmentRequiresInsertAndExtendsNaSet) {
  NameResolver& r = *resolver_;
  const Guid g = Guid::FromSequence(11);
  EXPECT_THROW(r.AddAttachment(g, NetworkAddress{1, 1}),
               std::invalid_argument);
  r.Insert(g, NetworkAddress{40, 1});
  r.AddAttachment(g, NetworkAddress{50, 1});
  const LookupResult result = r.Lookup(g, 99);
  ASSERT_TRUE(result.found);
  EXPECT_TRUE(result.nas.AttachedTo(40));
  EXPECT_TRUE(result.nas.AttachedTo(50));
  // Duplicate attachment is rejected, not silently absorbed.
  EXPECT_THROW(r.AddAttachment(g, NetworkAddress{50, 1}),
               std::invalid_argument);
}

TEST_P(ResolverContractTest, LookupWithViewAnswersOrDeclaresUnsupported) {
  NameResolver& r = *resolver_;
  const Guid g = Guid::FromSequence(13);
  r.Insert(g, NetworkAddress{60, 1});
  // Under the *current* view every backend must still resolve; backends
  // whose placement ignores BGP flag the answer instead of diverging.
  const LookupResult result =
      r.LookupWithView(g, 77, SharedEnv().env.table);
  EXPECT_TRUE(result.found);
  if (result.status == ResolverStatus::kUnsupported) {
    const LookupResult plain = r.Lookup(g, 77);
    EXPECT_EQ(result.found, plain.found);
    EXPECT_DOUBLE_EQ(result.latency_ms, plain.latency_ms);
  }
}

TEST_P(ResolverContractTest, FailedAsesCostTimeoutAndRecover) {
  NameResolver& r = *resolver_;
  const Guid g = Guid::FromSequence(17);
  r.Insert(g, NetworkAddress{70, 1});

  // Every AS down: no backend can answer, and at least one probe pays the
  // failure timeout.
  std::vector<AsId> all;
  for (AsId as = 0; as < SharedEnv().env.graph.num_nodes(); ++as) {
    all.push_back(as);
  }
  r.SetFailedAses(all);
  const LookupResult down = r.Lookup(g, 88);
  EXPECT_FALSE(down.found);
  EXPECT_GE(down.latency_ms, r.failure_timeout_ms());

  r.SetFailedAses({});
  EXPECT_TRUE(r.Lookup(g, 88).found);
}

TEST_P(ResolverContractTest, MetricsCountLookupsAndSplitHitMiss) {
  NameResolver& r = *resolver_;
  MetricsRegistry registry;
  r.EnableMetrics(&registry);
  const Guid g = Guid::FromSequence(19);
  r.Insert(g, NetworkAddress{90, 1});
  r.Lookup(g, 3);                       // hit
  r.Lookup(Guid::FromSequence(20), 3);  // miss

  std::uint64_t lookups = 0, hits = 0, misses = 0;
  for (const CounterSnapshot& c : registry.Snapshot().counters) {
    // "dmap.lookups" for DMapResolver, "<scheme>.lookups" otherwise.
    if (c.name.ends_with(".lookups")) lookups = c.value;
    if (c.name.ends_with(".lookup_hits")) hits = c.value;
    if (c.name.ends_with(".lookup_misses")) misses = c.value;
  }
  EXPECT_EQ(lookups, 2u);
  EXPECT_EQ(hits, 1u);
  EXPECT_EQ(misses, 1u);
}

TEST_P(ResolverContractTest, TracingFillsOutcomeTrace) {
  NameResolver& r = *resolver_;
  ProbeTracer tracer(1, 1);  // sample everything
  r.EnableTracing(&tracer);
  const Guid g = Guid::FromSequence(23);
  r.Insert(g, NetworkAddress{95, 1});
  const LookupResult result = r.Lookup(g, 7);
  ASSERT_TRUE(result.trace.has_value());
  const ProbeTrace& trace = *result.trace;
  EXPECT_EQ(trace.op, 'L');
  EXPECT_EQ(trace.guid_fp, g.Fingerprint64());
  EXPECT_EQ(trace.querier, 7u);
  EXPECT_TRUE(trace.found);
  EXPECT_EQ(trace.attempts, result.attempts);
  EXPECT_DOUBLE_EQ(trace.latency_ms, result.latency_ms);
  ASSERT_GE(trace.probes.size(), 1u);
  EXPECT_EQ(trace.probes.back().outcome, ProbeOutcome::kHit);
  EXPECT_EQ(tracer.recorded(), 1u);  // sink got a copy
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, ResolverContractTest,
    testing::Values(
        BackendCase{"dmap",
                    [](ContractEnv& e) -> std::unique_ptr<NameResolver> {
                      DMapOptions options;
                      options.k = 5;
                      return std::make_unique<DMapResolver>(
                          e.env.graph, e.env.table, options);
                    }},
        BackendCase{"chord",
                    [](ContractEnv& e) -> std::unique_ptr<NameResolver> {
                      return std::make_unique<ChordDht>(e.env.graph,
                                                        e.oracle);
                    }},
        BackendCase{"home_agent",
                    [](ContractEnv& e) -> std::unique_ptr<NameResolver> {
                      return std::make_unique<HomeAgent>(e.oracle);
                    }},
        BackendCase{"central",
                    [](ContractEnv& e) -> std::unique_ptr<NameResolver> {
                      return std::make_unique<CentralDirectory>(e.oracle,
                                                                AsId(1));
                    }}),
    [](const testing::TestParamInfo<BackendCase>& info) {
      return std::string(info.param.label);
    });

}  // namespace
}  // namespace dmap
