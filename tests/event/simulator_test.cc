#include "event/simulator.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace dmap {
namespace {

TEST(SimTimeTest, Arithmetic) {
  const SimTime a = SimTime::Millis(100);
  const SimTime b = SimTime::Seconds(1);
  EXPECT_DOUBLE_EQ((a + b).millis(), 1100.0);
  EXPECT_DOUBLE_EQ((b - a).millis(), 900.0);
  EXPECT_DOUBLE_EQ((a * 2.5).millis(), 250.0);
  EXPECT_LT(a, b);
  EXPECT_EQ(SimTime::Zero().millis(), 0.0);
  EXPECT_DOUBLE_EQ(b.seconds(), 1.0);
}

TEST(SimulatorTest, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(SimTime::Millis(30), [&] { order.push_back(3); });
  sim.Schedule(SimTime::Millis(10), [&] { order.push_back(1); });
  sim.Schedule(SimTime::Millis(20), [&] { order.push_back(2); });
  EXPECT_EQ(sim.Run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.Now().millis(), 30.0);
}

TEST(SimulatorTest, TiesBreakFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(SimTime::Millis(5), [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[std::size_t(i)], i);
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator sim;
  std::vector<double> times;
  std::function<void()> chain = [&] {
    times.push_back(sim.Now().millis());
    if (times.size() < 5) sim.Schedule(SimTime::Millis(10), chain);
  };
  sim.Schedule(SimTime::Millis(10), chain);
  sim.Run();
  EXPECT_EQ(times, (std::vector<double>{10, 20, 30, 40, 50}));
}

TEST(SimulatorTest, SchedulingInPastThrows) {
  Simulator sim;
  sim.Schedule(SimTime::Millis(10), [] {});
  sim.Run();
  EXPECT_THROW(sim.ScheduleAt(SimTime::Millis(5), [] {}),
               std::invalid_argument);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  EventHandle handle = sim.Schedule(SimTime::Millis(10), [&] { ran = true; });
  EXPECT_TRUE(handle.pending());
  EXPECT_TRUE(handle.Cancel());
  EXPECT_FALSE(handle.pending());
  EXPECT_FALSE(handle.Cancel());  // second cancel is a no-op
  sim.Run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.executed_events(), 0u);
}

TEST(SimulatorTest, CancelUpdatesPendingCount) {
  Simulator sim;
  EventHandle a = sim.Schedule(SimTime::Millis(1), [] {});
  sim.Schedule(SimTime::Millis(2), [] {});
  EXPECT_EQ(sim.PendingEvents(), 2u);
  a.Cancel();
  EXPECT_EQ(sim.PendingEvents(), 1u);
  EXPECT_FALSE(sim.Empty());
  sim.Run();
  EXPECT_TRUE(sim.Empty());
}

TEST(SimulatorTest, CancelAfterExecutionIsNoop) {
  Simulator sim;
  EventHandle handle = sim.Schedule(SimTime::Millis(1), [] {});
  sim.Run();
  EXPECT_FALSE(handle.pending());
  EXPECT_FALSE(handle.Cancel());
}

TEST(SimulatorTest, DefaultHandleIsInert) {
  EventHandle handle;
  EXPECT_FALSE(handle.pending());
  EXPECT_FALSE(handle.Cancel());
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  std::vector<double> times;
  for (const double t : {10.0, 20.0, 30.0, 40.0}) {
    sim.Schedule(SimTime::Millis(t),
                 [&times, &sim] { times.push_back(sim.Now().millis()); });
  }
  EXPECT_EQ(sim.RunUntil(SimTime::Millis(25)), 2u);
  EXPECT_EQ(times, (std::vector<double>{10, 20}));
  EXPECT_EQ(sim.PendingEvents(), 2u);
  EXPECT_EQ(sim.RunUntil(SimTime::Millis(1000)), 2u);
  EXPECT_EQ(times.size(), 4u);
}

TEST(SimulatorTest, RunUntilWithEmptyQueueDoesNotAdvanceClock) {
  Simulator sim;
  sim.RunUntil(SimTime::Millis(100));
  EXPECT_DOUBLE_EQ(sim.Now().millis(), 0.0);
}

TEST(SimulatorTest, StopDiscardsFutureEvents) {
  Simulator sim;
  int executed = 0;
  sim.Schedule(SimTime::Millis(1), [&] {
    ++executed;
    sim.Stop();
  });
  sim.Schedule(SimTime::Millis(2), [&] { ++executed; });
  sim.Run();
  EXPECT_EQ(executed, 1);
  EXPECT_TRUE(sim.Empty());
}

TEST(SimulatorTest, StepExecutesExactlyOne) {
  Simulator sim;
  int executed = 0;
  sim.Schedule(SimTime::Millis(1), [&] { ++executed; });
  sim.Schedule(SimTime::Millis(2), [&] { ++executed; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(executed, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
  EXPECT_EQ(executed, 2);
}

TEST(SimulatorTest, ZeroDelayRunsAtCurrentTime) {
  Simulator sim;
  double ran_at = -1;
  sim.Schedule(SimTime::Millis(5), [&] {
    sim.Schedule(SimTime::Zero(), [&] { ran_at = sim.Now().millis(); });
  });
  sim.Run();
  EXPECT_DOUBLE_EQ(ran_at, 5.0);
}

TEST(SimulatorTest, ScheduleRepeatingFiresEveryPeriodUntilFalse) {
  Simulator sim;
  std::vector<double> fired_at;
  sim.ScheduleRepeating(SimTime::Millis(10), [&] {
    fired_at.push_back(sim.Now().millis());
    return fired_at.size() < 3;  // third tick ends the series
  });
  sim.Run();
  EXPECT_EQ(fired_at, (std::vector<double>{10.0, 20.0, 30.0}));
  EXPECT_TRUE(sim.Empty());
}

TEST(SimulatorTest, ScheduleRepeatingInterleavesWithOneShotEvents) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleRepeating(SimTime::Millis(10), [&] {
    order.push_back(0);
    return order.size() < 5;
  });
  sim.Schedule(SimTime::Millis(15), [&] { order.push_back(1); });
  sim.Run();
  // Ticks at 10/20/30/40 with the one-shot landing between the first two;
  // the tick that makes the count reach five returns false and ends it.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 0, 0, 0}));
}

TEST(SimulatorTest, CancellingFirstTickStopsSeriesBeforeItStarts) {
  Simulator sim;
  int fired = 0;
  EventHandle first = sim.ScheduleRepeating(SimTime::Millis(10), [&] {
    ++fired;
    return true;  // would repeat forever
  });
  EXPECT_TRUE(first.Cancel());
  sim.Run();
  EXPECT_EQ(fired, 0);
  EXPECT_TRUE(sim.Empty());
}

TEST(SimulatorTest, ScheduleRepeatingRejectsNonPositivePeriod) {
  Simulator sim;
  EXPECT_THROW(sim.ScheduleRepeating(SimTime::Zero(), [] { return false; }),
               std::invalid_argument);
  EXPECT_THROW(
      sim.ScheduleRepeating(SimTime::Millis(-1), [] { return false; }),
      std::invalid_argument);
}

TEST(SimulatorTest, ManyEventsStressOrdering) {
  Simulator sim;
  double last = -1;
  bool monotone = true;
  for (int i = 0; i < 10000; ++i) {
    // Pseudo-random but deterministic times.
    const double t = double((i * 2654435761u) % 100000) / 100.0;
    sim.Schedule(SimTime::Millis(t), [&, t] {
      if (sim.Now().millis() < last) monotone = false;
      last = sim.Now().millis();
    });
  }
  EXPECT_EQ(sim.Run(), 10000u);
  EXPECT_TRUE(monotone);
}

}  // namespace
}  // namespace dmap
