#include "topo/generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "topo/shortest_path.h"

namespace dmap {
namespace {

TopologyParams SmallParams(std::uint32_t nodes = 600) {
  return ScaledTopologyParams(nodes, 123);
}

TEST(GeneratorTest, ProducesRequestedCounts) {
  const TopologyParams p = SmallParams();
  const AsGraph g = GenerateInternetTopology(p);
  EXPECT_EQ(g.num_nodes(), p.num_nodes);
  EXPECT_EQ(g.num_links(), p.target_links);
}

TEST(GeneratorTest, GraphIsConnected) {
  const AsGraph g = GenerateInternetTopology(SmallParams());
  const auto hops = BfsHops(g, 0);
  for (AsId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NE(hops[v], kUnreachableHops) << "node " << v << " unreachable";
  }
}

TEST(GeneratorTest, CoreIsFullyMeshed) {
  const TopologyParams p = SmallParams();
  const AsGraph g = GenerateInternetTopology(p);
  for (AsId a = 0; a < p.core_size; ++a) {
    for (AsId b = a + 1; b < p.core_size; ++b) {
      EXPECT_TRUE(g.HasEdge(a, b)) << a << "-" << b;
    }
  }
}

TEST(GeneratorTest, DeterministicForSeed) {
  const AsGraph g1 = GenerateInternetTopology(SmallParams());
  const AsGraph g2 = GenerateInternetTopology(SmallParams());
  ASSERT_EQ(g1.num_links(), g2.num_links());
  for (std::size_t i = 0; i < g1.links().size(); ++i) {
    EXPECT_EQ(g1.links()[i].a, g2.links()[i].a);
    EXPECT_EQ(g1.links()[i].b, g2.links()[i].b);
    EXPECT_DOUBLE_EQ(g1.links()[i].latency_ms, g2.links()[i].latency_ms);
  }
}

TEST(GeneratorTest, SeedChangesTopology) {
  TopologyParams a = SmallParams(), b = SmallParams();
  b.seed = 321;
  const AsGraph ga = GenerateInternetTopology(a);
  const AsGraph gb = GenerateInternetTopology(b);
  bool any_difference = false;
  for (std::size_t i = 0; i < ga.links().size() && !any_difference; ++i) {
    any_difference = ga.links()[i].a != gb.links()[i].a ||
                     ga.links()[i].b != gb.links()[i].b;
  }
  EXPECT_TRUE(any_difference);
}

TEST(GeneratorTest, DegreeDistributionIsHeavyTailed) {
  const AsGraph g = GenerateInternetTopology(SmallParams(2000));
  std::vector<std::uint32_t> degrees(g.num_nodes());
  for (AsId v = 0; v < g.num_nodes(); ++v) degrees[v] = g.Degree(v);
  std::sort(degrees.begin(), degrees.end());
  // Preferential attachment: the max degree dwarfs the median.
  const std::uint32_t median = degrees[degrees.size() / 2];
  const std::uint32_t max = degrees.back();
  EXPECT_GE(max, median * 10);
  // A sizeable stub population (degree 1).
  const auto stubs = std::size_t(
      std::count(degrees.begin(), degrees.end(), 1u));
  EXPECT_GT(stubs, g.num_nodes() / 10);
}

TEST(GeneratorTest, IntraLatencyMedianNearDimesValue) {
  const AsGraph g = GenerateInternetTopology(SmallParams(4000));
  std::vector<double> intra = g.intra_latencies();
  std::sort(intra.begin(), intra.end());
  const double median = intra[intra.size() / 2];
  // Log-normal with median 3.5 ms (the DIMES value the paper uses).
  EXPECT_GT(median, 2.5);
  EXPECT_LT(median, 5.0);
}

TEST(GeneratorTest, LatenciesArePositive) {
  const AsGraph g = GenerateInternetTopology(SmallParams());
  for (const AsLink& link : g.links()) EXPECT_GT(link.latency_ms, 0.0);
  for (AsId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_GT(g.IntraLatencyMs(v), 0.0);
    EXPECT_GT(g.EndNodeWeight(v), 0.0);
  }
}

TEST(GeneratorTest, PathologicalTailExists) {
  // At full pathological_fraction 5e-4 a 26k topology has ~13 pathological
  // ASs; force a higher rate on a small graph to test the mechanism.
  TopologyParams p = SmallParams(2000);
  p.pathological_fraction = 0.01;
  const AsGraph g = GenerateInternetTopology(p);
  const auto& intra = g.intra_latencies();
  const double max = *std::max_element(intra.begin(), intra.end());
  EXPECT_GT(max, 100.0);  // multi-hundred-ms tail present
}

TEST(GeneratorTest, GeographicVariantIsConnectedAndComplete) {
  TopologyParams p = SmallParams(1500);
  p.geographic = true;
  const AsGraph g = GenerateInternetTopology(p);
  EXPECT_EQ(g.num_nodes(), p.num_nodes);
  EXPECT_EQ(g.num_links(), p.target_links);
  const auto hops = BfsHops(g, 0);
  for (AsId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NE(hops[v], kUnreachableHops) << v;
  }
  for (const AsLink& link : g.links()) EXPECT_GT(link.latency_ms, 0.0);
}

TEST(GeneratorTest, GeographicVariantHasRegionalLocality) {
  // Under the geographic model nearby node pairs must be reachable with
  // systematically lower latency than the same pairs in the non-geo model.
  // Proxy: the latency of the minimum-latency incident link correlates
  // with the AS's neighborhood. We test a weaker, robust property: the
  // median *direct-link* latency is far below the corner-to-corner bound,
  // while the maximum approaches it (distance-dependence exists).
  TopologyParams p = SmallParams(1500);
  p.geographic = true;
  const AsGraph g = GenerateInternetTopology(p);
  std::vector<double> latencies;
  for (const AsLink& link : g.links()) latencies.push_back(link.latency_ms);
  std::sort(latencies.begin(), latencies.end());
  const double median = latencies[latencies.size() / 2];
  const double max = latencies.back();
  EXPECT_LT(median, 0.25 * p.geo_latency_per_unit_ms);  // links are local
  EXPECT_GT(max, 0.5 * p.geo_latency_per_unit_ms);      // some long hauls
}

TEST(GeneratorTest, GeographicVariantStillHeavyTailedDegrees) {
  TopologyParams p = SmallParams(2000);
  p.geographic = true;
  const AsGraph g = GenerateInternetTopology(p);
  std::uint32_t max_degree = 0;
  for (AsId v = 0; v < g.num_nodes(); ++v) {
    max_degree = std::max(max_degree, g.Degree(v));
  }
  EXPECT_GE(max_degree, 50u);  // hubs survive the locality thinning
}

TEST(GeneratorTest, ValidationErrors) {
  TopologyParams p = SmallParams();
  p.core_size = p.num_nodes + 1;
  EXPECT_THROW(GenerateInternetTopology(p), std::invalid_argument);

  p = SmallParams();
  p.target_links = p.num_nodes / 2;  // cannot even attach everyone
  EXPECT_THROW(GenerateInternetTopology(p), std::invalid_argument);

  p = SmallParams();
  p.stub_fraction = 1.0;
  EXPECT_THROW(GenerateInternetTopology(p), std::invalid_argument);
}

TEST(GeneratorTest, ScaledParamsPreserveDensity) {
  const TopologyParams full;  // paper scale
  const TopologyParams scaled = ScaledTopologyParams(1000, 5);
  const double full_density = double(full.target_links) / full.num_nodes;
  const double scaled_density =
      double(scaled.target_links) / scaled.num_nodes;
  EXPECT_NEAR(scaled_density, full_density, full_density * 0.05);
}

}  // namespace
}  // namespace dmap
