#include "topo/shortest_path.h"

#include <gtest/gtest.h>

#include <cmath>

#include "topo/generator.h"

namespace dmap {
namespace {

// 0 --1ms-- 1 --1ms-- 2 and a direct 0 --5ms-- 2 edge; plus dangling 3.
AsGraph MakeDiamond() {
  const std::vector<AsLink> links{
      {0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 5.0}, {2, 3, 2.0}};
  return AsGraph(4, links, {0.5, 0.5, 0.5, 4.0}, {1, 1, 1, 1});
}

TEST(DijkstraTest, PrefersMultiHopWhenCheaper) {
  const AsGraph g = MakeDiamond();
  const auto dist = DijkstraLatency(g, 0);
  EXPECT_FLOAT_EQ(dist[0], 0.0f);
  EXPECT_FLOAT_EQ(dist[1], 1.0f);
  EXPECT_FLOAT_EQ(dist[2], 2.0f);  // via node 1, not the 5ms direct link
  EXPECT_FLOAT_EQ(dist[3], 4.0f);
}

TEST(DijkstraTest, UnreachableIsInfinite) {
  const std::vector<AsLink> links{{0, 1, 1.0}};
  const AsGraph g(3, links, {0, 0, 0}, {1, 1, 1});
  const auto dist = DijkstraLatency(g, 0);
  EXPECT_TRUE(std::isinf(dist[2]));
}

TEST(BfsHopsTest, CountsMinimumEdges) {
  const AsGraph g = MakeDiamond();
  const auto hops = BfsHops(g, 0);
  EXPECT_EQ(hops[0], 0u);
  EXPECT_EQ(hops[1], 1u);
  EXPECT_EQ(hops[2], 1u);  // the direct link wins on hops despite latency
  EXPECT_EQ(hops[3], 2u);
}

TEST(BfsHopsTest, UnreachableMarker) {
  const std::vector<AsLink> links{{0, 1, 1.0}};
  const AsGraph g(3, links, {0, 0, 0}, {1, 1, 1});
  EXPECT_EQ(BfsHops(g, 0)[2], kUnreachableHops);
}

TEST(PathOracleTest, OneWayAndRttComposition) {
  const AsGraph g = MakeDiamond();
  PathOracle oracle(g);
  // intra(0) + path + intra(2) = 0.5 + 2.0 + 0.5.
  EXPECT_DOUBLE_EQ(oracle.OneWayMs(0, 2), 3.0);
  EXPECT_DOUBLE_EQ(oracle.RttMs(0, 2), 6.0);
  // Same-AS resolution costs one intra-AS traversal each way.
  EXPECT_DOUBLE_EQ(oracle.OneWayMs(3, 3), 4.0);
  EXPECT_DOUBLE_EQ(oracle.RttMs(3, 3), 8.0);
}

TEST(PathOracleTest, CachesPerSource) {
  const AsGraph g = MakeDiamond();
  PathOracle oracle(g, 8);
  oracle.LinkLatencyMs(0, 1);
  oracle.LinkLatencyMs(0, 2);
  oracle.LinkLatencyMs(0, 3);
  EXPECT_EQ(oracle.dijkstra_runs(), 1u);
  oracle.LinkLatencyMs(1, 0);
  EXPECT_EQ(oracle.dijkstra_runs(), 2u);
  oracle.Hops(0, 3);
  oracle.Hops(0, 2);
  EXPECT_EQ(oracle.bfs_runs(), 1u);
}

TEST(PathOracleTest, LruEvictsLeastRecentlyUsed) {
  const AsGraph g = MakeDiamond();
  PathOracle oracle(g, 2);
  oracle.LinkLatencyMs(0, 1);  // cache: {0}
  oracle.LinkLatencyMs(1, 0);  // cache: {1, 0}
  oracle.LinkLatencyMs(0, 2);  // hit; cache: {0, 1}
  oracle.LinkLatencyMs(2, 0);  // evicts 1; cache: {2, 0}
  EXPECT_EQ(oracle.dijkstra_runs(), 3u);
  oracle.LinkLatencyMs(1, 0);  // miss again
  EXPECT_EQ(oracle.dijkstra_runs(), 4u);
  oracle.LinkLatencyMs(2, 3);  // 2 was evicted by 1's reinsertion? No: {1, 2}
  EXPECT_EQ(oracle.dijkstra_runs(), 4u);
}

TEST(PathOracleTest, ZeroCapacityClampsToOne) {
  const AsGraph g = MakeDiamond();
  PathOracle oracle(g, 0);
  oracle.LinkLatencyMs(0, 1);
  oracle.LinkLatencyMs(0, 2);
  EXPECT_EQ(oracle.dijkstra_runs(), 1u);
}

TEST(PathOracleTest, SymmetricOnUndirectedGraph) {
  // Latency-weighted shortest paths are symmetric for undirected links.
  const AsGraph g = GenerateInternetTopology(ScaledTopologyParams(300, 9));
  PathOracle oracle(g);
  for (const auto& [a, b] : std::vector<std::pair<AsId, AsId>>{
           {3, 250}, {17, 100}, {0, 299}}) {
    EXPECT_NEAR(oracle.LinkLatencyMs(a, b), oracle.LinkLatencyMs(b, a), 1e-3);
    EXPECT_EQ(oracle.Hops(a, b), oracle.Hops(b, a));
  }
}

TEST(PathOracleTest, PinnedVectorSurvivesEviction) {
  // Regression: with capacity 1, asking for a second source evicts the
  // first entry. A raw span into the evicted vector would dangle; the
  // pinned handle must keep the data alive and unchanged.
  const AsGraph g = MakeDiamond();
  PathOracle oracle(g, /*capacity=*/1);
  const PinnedVector<float> from0 = oracle.LatenciesFrom(0);
  ASSERT_TRUE(from0.valid());
  const float before = from0[2];

  oracle.LatenciesFrom(1);  // evicts source 0 from the size-1 LRU
  oracle.LatenciesFrom(2);  // and churns the cache once more
  EXPECT_EQ(oracle.dijkstra_runs(), 3u);

  ASSERT_TRUE(from0.valid());
  ASSERT_EQ(from0.size(), 4u);
  EXPECT_FLOAT_EQ(from0[2], before);
  EXPECT_FLOAT_EQ(from0[2], 2.0f);
  EXPECT_FLOAT_EQ(from0.span()[1], 1.0f);

  const PinnedVector<std::uint16_t> hops0 = oracle.HopsFrom(0);
  oracle.HopsFrom(1);
  oracle.HopsFrom(3);
  ASSERT_TRUE(hops0.valid());
  EXPECT_EQ(hops0[3], 2u);
}

TEST(PathOracleTest, ReFetchAfterEvictionRecomputes) {
  const AsGraph g = MakeDiamond();
  PathOracle oracle(g, 1);
  const auto a = oracle.LatenciesFrom(0);
  oracle.LatenciesFrom(1);
  const auto b = oracle.LatenciesFrom(0);  // miss: recomputed
  EXPECT_EQ(oracle.dijkstra_runs(), 3u);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
}

TEST(PathOracleTest, ShardsCacheIndependently) {
  const AsGraph g = MakeDiamond();
  PathOracle oracle(g, 8, /*num_shards=*/2);
  EXPECT_EQ(oracle.num_shards(), 2u);
  oracle.LinkLatencyMs(0, 1, /*shard=*/0);
  EXPECT_EQ(oracle.dijkstra_runs(), 1u);
  // Same source on another shard is a miss there: shards share nothing.
  oracle.LinkLatencyMs(0, 1, /*shard=*/1);
  EXPECT_EQ(oracle.dijkstra_runs(), 2u);
  // ...but hits stay local to each shard.
  oracle.LinkLatencyMs(0, 2, 0);
  oracle.LinkLatencyMs(0, 2, 1);
  EXPECT_EQ(oracle.dijkstra_runs(), 2u);
}

TEST(PathOracleTest, ShardsAgreeOnValues) {
  const AsGraph g = GenerateInternetTopology(ScaledTopologyParams(300, 11));
  PathOracle oracle(g, 8, 3);
  for (const auto& [a, b] :
       std::vector<std::pair<AsId, AsId>>{{3, 250}, {17, 100}, {0, 299}}) {
    const double reference = oracle.RttMs(a, b, 0);
    EXPECT_DOUBLE_EQ(oracle.RttMs(a, b, 1), reference);
    EXPECT_DOUBLE_EQ(oracle.RttMs(a, b, 2), reference);
    EXPECT_EQ(oracle.Hops(a, b, 1), oracle.Hops(a, b, 0));
  }
}

TEST(PathOracleTest, SetNumShardsPreservesRunTotals) {
  const AsGraph g = MakeDiamond();
  PathOracle oracle(g, 8);
  oracle.LinkLatencyMs(0, 1);
  oracle.Hops(1, 2);
  oracle.SetNumShards(4);
  EXPECT_EQ(oracle.num_shards(), 4u);
  EXPECT_EQ(oracle.dijkstra_runs(), 1u);
  EXPECT_EQ(oracle.bfs_runs(), 1u);
  // Caches were dropped: the same query is a miss again.
  oracle.LinkLatencyMs(0, 1);
  EXPECT_EQ(oracle.dijkstra_runs(), 2u);
}

TEST(PathOracleTest, TriangleInequalityOverSampledPairs) {
  const AsGraph g = GenerateInternetTopology(ScaledTopologyParams(300, 10));
  PathOracle oracle(g);
  // d(a, c) <= d(a, b) + d(b, c) for shortest-path metrics.
  for (AsId b : {5u, 50u, 150u}) {
    const double ab = oracle.LinkLatencyMs(7, b);
    const double bc = oracle.LinkLatencyMs(b, 200);
    const double ac = oracle.LinkLatencyMs(7, 200);
    EXPECT_LE(ac, ab + bc + 1e-3);
  }
}

}  // namespace
}  // namespace dmap
