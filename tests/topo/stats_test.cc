#include "topo/stats.h"

#include <gtest/gtest.h>

#include "topo/generator.h"

namespace dmap {
namespace {

TEST(TopologyStatsTest, RingGraphBasics) {
  // A 6-ring: every degree 2, mean path 1.8 (1+1+2+2+3)/5, diameter 3.
  std::vector<AsLink> links;
  for (AsId v = 0; v < 6; ++v) links.push_back(AsLink{v, AsId((v + 1) % 6), 1.0});
  const AsGraph ring(6, links, std::vector<double>(6, 1.0),
                     std::vector<double>(6, 1.0));
  Rng rng(1);
  const TopologyStats stats = ComputeTopologyStats(ring, 6, rng);
  EXPECT_EQ(stats.nodes, 6u);
  EXPECT_EQ(stats.links, 6u);
  EXPECT_DOUBLE_EQ(stats.mean_degree, 2.0);
  EXPECT_EQ(stats.max_degree, 2u);
  EXPECT_DOUBLE_EQ(stats.stub_fraction, 0.0);
  EXPECT_NEAR(stats.mean_path_hops, 1.8, 1e-9);
  EXPECT_EQ(stats.diameter_lower_bound, 3u);
}

TEST(TopologyStatsTest, GeneratedTopologyMatchesInternetShape) {
  const AsGraph g = GenerateInternetTopology(ScaledTopologyParams(5000, 3));
  Rng rng(2);
  const TopologyStats stats = ComputeTopologyStats(g, 20, rng);
  // The published AS-graph values the generator targets (DESIGN.md):
  // power-law tail exponent ~2.1, mean AS path 3.5-4.5 at this scale,
  // a large stub population, mean degree ~6.8.
  EXPECT_NEAR(stats.mean_degree, 6.8, 0.7);
  // The peering-densification pass (generator step 3) upgrades some stubs,
  // so the final degree-1 fraction sits below the 40% attachment mix —
  // still a substantial stub population.
  EXPECT_GT(stats.stub_fraction, 0.08);
  EXPECT_LT(stats.stub_fraction, 0.55);
  EXPECT_GT(stats.degree_powerlaw_alpha, 1.5);
  EXPECT_LT(stats.degree_powerlaw_alpha, 3.2);
  EXPECT_GT(stats.mean_path_hops, 2.0);
  EXPECT_LT(stats.mean_path_hops, 5.0);
  EXPECT_GE(stats.diameter_lower_bound, 4u);
}

TEST(TopologyStatsTest, EmptyGraphThrows) {
  const AsGraph empty(0, {}, {}, {});
  Rng rng(3);
  EXPECT_THROW(ComputeTopologyStats(empty, 1, rng), std::invalid_argument);
}

TEST(TopologyStatsTest, SamplingIsDeterministicPerSeed) {
  const AsGraph g = GenerateInternetTopology(ScaledTopologyParams(1000, 4));
  Rng a(9), b(9);
  const TopologyStats sa = ComputeTopologyStats(g, 10, a);
  const TopologyStats sb = ComputeTopologyStats(g, 10, b);
  EXPECT_DOUBLE_EQ(sa.mean_path_hops, sb.mean_path_hops);
  EXPECT_EQ(sa.diameter_lower_bound, sb.diameter_lower_bound);
}

}  // namespace
}  // namespace dmap
