#include "topo/graph.h"

#include <gtest/gtest.h>

#include <vector>

namespace dmap {
namespace {

AsGraph MakeTriangle() {
  // 0 -- 1 -- 2 -- 0 with distinct latencies.
  const std::vector<AsLink> links{
      {0, 1, 5.0}, {1, 2, 7.0}, {0, 2, 11.0}};
  return AsGraph(3, links, {1.0, 2.0, 3.0}, {10.0, 20.0, 30.0});
}

TEST(AsGraphTest, BasicAccessors) {
  const AsGraph g = MakeTriangle();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_links(), 3u);
  EXPECT_EQ(g.Degree(0), 2u);
  EXPECT_DOUBLE_EQ(g.IntraLatencyMs(1), 2.0);
  EXPECT_DOUBLE_EQ(g.EndNodeWeight(2), 30.0);
}

TEST(AsGraphTest, NeighborsAreSortedAndSymmetric) {
  const AsGraph g = MakeTriangle();
  const auto n0 = g.Neighbors(0);
  ASSERT_EQ(n0.size(), 2u);
  EXPECT_EQ(n0[0].id, 1u);
  EXPECT_EQ(n0[1].id, 2u);
  EXPECT_DOUBLE_EQ(n0[0].latency_ms, 5.0);
  EXPECT_DOUBLE_EQ(n0[1].latency_ms, 11.0);
  // Symmetry: 2 sees 0 with the same latency.
  const auto n2 = g.Neighbors(2);
  ASSERT_EQ(n2.size(), 2u);
  EXPECT_EQ(n2[0].id, 0u);
  EXPECT_DOUBLE_EQ(n2[0].latency_ms, 11.0);
}

TEST(AsGraphTest, HasEdge) {
  const AsGraph g = MakeTriangle();
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_TRUE(g.HasEdge(2, 0));
  // Isolated pairs and self.
  const std::vector<AsLink> chain{{0, 1, 1.0}};
  const AsGraph g2(3, chain, {0, 0, 0}, {1, 1, 1});
  EXPECT_FALSE(g2.HasEdge(0, 2));
  EXPECT_FALSE(g2.HasEdge(2, 1));
}

TEST(AsGraphTest, IsolatedNodeHasNoNeighbors) {
  const std::vector<AsLink> links{{0, 1, 1.0}};
  const AsGraph g(3, links, {0, 0, 0}, {1, 1, 1});
  EXPECT_EQ(g.Degree(2), 0u);
  EXPECT_TRUE(g.Neighbors(2).empty());
}

TEST(AsGraphTest, ValidationRejectsBadInput) {
  const std::vector<AsLink> out_of_range{{0, 5, 1.0}};
  EXPECT_THROW(AsGraph(3, out_of_range, {0, 0, 0}, {1, 1, 1}),
               std::invalid_argument);
  const std::vector<AsLink> self_loop{{1, 1, 1.0}};
  EXPECT_THROW(AsGraph(3, self_loop, {0, 0, 0}, {1, 1, 1}),
               std::invalid_argument);
  const std::vector<AsLink> negative{{0, 1, -1.0}};
  EXPECT_THROW(AsGraph(3, negative, {0, 0, 0}, {1, 1, 1}),
               std::invalid_argument);
  const std::vector<AsLink> ok{{0, 1, 1.0}};
  EXPECT_THROW(AsGraph(3, ok, {0, 0}, {1, 1, 1}), std::invalid_argument);
  EXPECT_THROW(AsGraph(3, ok, {0, 0, 0}, {1, 1}), std::invalid_argument);
}

TEST(AsGraphTest, ParallelEdgesArePreserved) {
  // Real AS pairs can have multiple peering links; the graph keeps both.
  const std::vector<AsLink> links{{0, 1, 5.0}, {0, 1, 9.0}};
  const AsGraph g(2, links, {0, 0}, {1, 1});
  EXPECT_EQ(g.Degree(0), 2u);
  EXPECT_EQ(g.num_links(), 2u);
}

}  // namespace
}  // namespace dmap
