#include "topo/jellyfish.h"

#include <gtest/gtest.h>

#include <numeric>

#include "topo/generator.h"

namespace dmap {
namespace {

// Core triangle {0,1,2}; 3 is a shell node off 0; 4 is a hang off 3;
// 5 is a hang directly off the core.
AsGraph MakeJellyfishFixture() {
  const std::vector<AsLink> links{
      {0, 1, 1}, {1, 2, 1}, {0, 2, 1},  // core clique
      {0, 3, 1}, {3, 6, 1},             // 3 is degree-3 shell
      {3, 4, 1},                        // 4 hangs off 3
      {2, 5, 1},                        // 5 hangs off the core
      {6, 1, 1},                        // 6 closes a loop -> degree 2
  };
  return AsGraph(7, links, std::vector<double>(7, 1.0),
                 std::vector<double>(7, 1.0));
}

TEST(JellyfishTest, GreedyCoreContainsMaxDegreeClique) {
  const AsGraph g = MakeJellyfishFixture();
  const auto core = FindGreedyCore(g);
  // Highest degree node is 0 (degree 4) or 3 (degree 3) — 0 wins; the
  // greedy clique from 0 is {0, 1, 2}.
  EXPECT_EQ(core, (std::vector<AsId>{0, 1, 2}));
}

TEST(JellyfishTest, LayerAssignment) {
  const AsGraph g = MakeJellyfishFixture();
  const auto d = DecomposeJellyfish(g);
  // Core members in Layer 0.
  EXPECT_EQ(d.layer_of[0], 0);
  EXPECT_EQ(d.layer_of[1], 0);
  EXPECT_EQ(d.layer_of[2], 0);
  // 3 and 6 are Shell-1 -> Layer 1.
  EXPECT_EQ(d.layer_of[3], 1);
  EXPECT_EQ(d.layer_of[6], 1);
  // 5 hangs directly off the core: Hang-0 -> Layer 1.
  EXPECT_EQ(d.layer_of[5], 1);
  // 4 hangs off a Shell-1 node: Hang-1 -> Layer 2.
  EXPECT_EQ(d.layer_of[4], 2);
}

TEST(JellyfishTest, LayerSizesAndRatiosConsistent) {
  const AsGraph g = MakeJellyfishFixture();
  const auto d = DecomposeJellyfish(g);
  ASSERT_EQ(d.num_layers(), 3);
  EXPECT_EQ(d.layer_size[0], 3u);
  EXPECT_EQ(d.layer_size[1], 3u);
  EXPECT_EQ(d.layer_size[2], 1u);
  const double total = std::accumulate(d.layer_ratio.begin(),
                                       d.layer_ratio.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(JellyfishTest, DisconnectedGraphThrows) {
  const std::vector<AsLink> links{{0, 1, 1}, {1, 2, 1}, {0, 2, 1}};
  const AsGraph g(5, links, std::vector<double>(5, 1.0),
                  std::vector<double>(5, 1.0));
  EXPECT_THROW(DecomposeJellyfish(g), std::invalid_argument);
}

TEST(JellyfishTest, GeneratedTopologyDecomposes) {
  const AsGraph g = GenerateInternetTopology(ScaledTopologyParams(2000, 5));
  const auto d = DecomposeJellyfish(g);
  // The generator's tier-1 mesh should be (inside) the greedy core.
  EXPECT_GE(d.core.size(), 4u);
  // The Internet shape: few layers, with mass concentrated off-core.
  EXPECT_GE(d.num_layers(), 2);
  EXPECT_LE(d.num_layers(), 8);
  EXPECT_LT(d.layer_ratio[0], 0.05);
  std::uint32_t covered = 0;
  for (const auto s : d.layer_size) covered += s;
  EXPECT_EQ(covered, g.num_nodes());
}

TEST(JellyfishTest, CoreIsAClique) {
  const AsGraph g = GenerateInternetTopology(ScaledTopologyParams(1000, 6));
  const auto core = FindGreedyCore(g);
  for (std::size_t i = 0; i < core.size(); ++i) {
    for (std::size_t j = i + 1; j < core.size(); ++j) {
      EXPECT_TRUE(g.HasEdge(core[i], core[j]))
          << core[i] << "-" << core[j] << " missing";
    }
  }
}

}  // namespace
}  // namespace dmap
