#include "topo/hub_labels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "runtime/thread_pool.h"
#include "topo/generator.h"
#include "topo/shortest_path.h"

namespace dmap {
namespace {

// All weights sit on the 1/64 ms grid, so label merges must reproduce
// Dijkstra's floats exactly — EXPECT_EQ, not EXPECT_NEAR, throughout.
AsGraph MakeDiamond() {
  const std::vector<AsLink> links{
      {0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 5.0}, {2, 3, 2.0}};
  return AsGraph(4, links, {0.5, 0.5, 0.5, 4.0}, {1, 1, 1, 1});
}

// Connected random graph (spanning tree + extra chords) with grid-quantized
// positive weights — the shape the topology generators emit.
AsGraph MakeRandomGraph(std::uint32_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<AsLink> links;
  for (std::uint32_t i = 1; i < n; ++i) {
    links.push_back(AsLink{AsId(rng.NextBounded(i)), AsId(i),
                           QuantizeLatencyMs(0.3 + 40.0 * rng.NextDouble())});
  }
  for (std::uint32_t e = 0; e < n; ++e) {
    const AsId a = AsId(rng.NextBounded(n));
    const AsId b = AsId(rng.NextBounded(n));
    if (a == b) continue;
    links.push_back(
        AsLink{a, b, QuantizeLatencyMs(0.3 + 40.0 * rng.NextDouble())});
  }
  return AsGraph(n, links, std::vector<double>(n, 0.5),
                 std::vector<double>(n, 1.0));
}

void ExpectAllPairsMatch(const AsGraph& g, const HubLabels& labels) {
  for (AsId u = 0; u < g.num_nodes(); ++u) {
    const auto dist = DijkstraLatency(g, u);
    const auto hops = BfsHops(g, u);
    for (AsId v = 0; v < g.num_nodes(); ++v) {
      if (std::isinf(dist[v])) {
        EXPECT_TRUE(std::isinf(labels.LatencyMs(u, v))) << u << "->" << v;
      } else {
        EXPECT_EQ(labels.LatencyMs(u, v), dist[v]) << u << "->" << v;
      }
      EXPECT_EQ(labels.Hops(u, v), hops[v]) << u << "->" << v;
    }
  }
}

TEST(HubLabelsTest, DiamondAllPairsExact) {
  const AsGraph g = MakeDiamond();
  const HubLabels labels(g);
  ExpectAllPairsMatch(g, labels);
  EXPECT_FLOAT_EQ(labels.LatencyMs(0, 2), 2.0f);  // via node 1
  EXPECT_EQ(labels.Hops(0, 2), 1u);               // direct link wins on hops
  EXPECT_EQ(labels.LatencyMs(1, 1), 0.0f);
  EXPECT_EQ(labels.Hops(3, 3), 0u);
}

TEST(HubLabelsTest, RandomGraphsMatchDijkstraAndBfs) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const std::uint32_t n = 20 + std::uint32_t(seed) * 5;
    const AsGraph g = MakeRandomGraph(n, seed);
    const HubLabels labels(g);
    ExpectAllPairsMatch(g, labels);
  }
}

TEST(HubLabelsTest, DisconnectedComponentsAreUnreachable) {
  // Two components: {0, 1} and {2, 3}; no path between them.
  const std::vector<AsLink> links{{0, 1, 1.0}, {2, 3, 1.0}};
  const AsGraph g(4, links, {0, 0, 0, 0}, {1, 1, 1, 1});
  const HubLabels labels(g);
  EXPECT_TRUE(std::isinf(labels.LatencyMs(0, 2)));
  EXPECT_TRUE(std::isinf(labels.LatencyMs(3, 1)));
  EXPECT_EQ(labels.Hops(0, 3), kUnreachableHops);
  EXPECT_FLOAT_EQ(labels.LatencyMs(2, 3), 1.0f);
  ExpectAllPairsMatch(g, labels);
}

TEST(HubLabelsTest, FixtureTopologySampledSources) {
  // The real generator output (grid-quantized by construction): full
  // distance vectors from sampled sources must match bit-for-bit.
  const AsGraph g = GenerateInternetTopology(ScaledTopologyParams(600, 7));
  ThreadPool pool(3);
  const HubLabels labels(g, &pool);
  for (const AsId u : {0u, 17u, 251u, 599u}) {
    const auto dist = DijkstraLatency(g, u);
    const auto hops = BfsHops(g, u);
    for (AsId v = 0; v < g.num_nodes(); ++v) {
      if (std::isinf(dist[v])) {
        EXPECT_TRUE(std::isinf(labels.LatencyMs(u, v)));
      } else {
        EXPECT_EQ(labels.LatencyMs(u, v), dist[v]) << u << "->" << v;
      }
      EXPECT_EQ(labels.Hops(u, v), hops[v]) << u << "->" << v;
    }
  }
}

TEST(HubLabelsTest, ByteIdenticalAcrossThreadCounts) {
  // The label arrays (not just the query answers) are part of the
  // deterministic contract: any --threads value must build the same bytes.
  const AsGraph g = GenerateInternetTopology(ScaledTopologyParams(400, 13));
  ThreadPool pool1(1);
  ThreadPool pool7(7);
  const HubLabels serial(g, nullptr);
  const HubLabels one(g, &pool1);
  const HubLabels seven(g, &pool7);
  for (const HubLabels* other : {&one, &seven}) {
    EXPECT_EQ(serial.hub_order(), other->hub_order());
    EXPECT_EQ(serial.latency_offsets(), other->latency_offsets());
    EXPECT_EQ(serial.latency_hubs(), other->latency_hubs());
    EXPECT_EQ(serial.latency_dists(), other->latency_dists());
    EXPECT_EQ(serial.hop_offsets(), other->hop_offsets());
    EXPECT_EQ(serial.hop_hubs(), other->hop_hubs());
    EXPECT_EQ(serial.hop_dists(), other->hop_dists());
  }
  EXPECT_EQ(serial.stats().latency_entries, seven.stats().latency_entries);
  EXPECT_EQ(serial.stats().hop_entries, seven.stats().hop_entries);
}

TEST(HubLabelsTest, HubOrderIsDegreeThenId) {
  const AsGraph g = MakeDiamond();  // degrees: 0->2, 1->2, 2->3, 3->1
  const HubLabels labels(g);
  ASSERT_EQ(labels.hub_order().size(), 4u);
  EXPECT_EQ(labels.hub_order()[0], 2u);
  EXPECT_EQ(labels.hub_order()[1], 0u);  // ties broken by ascending id
  EXPECT_EQ(labels.hub_order()[2], 1u);
  EXPECT_EQ(labels.hub_order()[3], 3u);
}

TEST(PathOracleHubBackendTest, RoutesPointQueriesThroughLabels) {
  const AsGraph g = MakeDiamond();
  const HubLabels labels(g);
  PathOracle oracle(g);
  EXPECT_EQ(oracle.backend(), PathOracleBackend::kLru);
  oracle.SetHubLabels(&labels);
  EXPECT_EQ(oracle.backend(), PathOracleBackend::kHub);
  EXPECT_DOUBLE_EQ(oracle.LinkLatencyMs(0, 2), 2.0);
  EXPECT_EQ(oracle.Hops(0, 3), 2u);
  EXPECT_DOUBLE_EQ(oracle.OneWayMs(0, 2), 3.0);
  EXPECT_DOUBLE_EQ(oracle.RttMs(0, 2), 6.0);
  // Point queries never ran an SSSP; the label counter saw all four.
  EXPECT_EQ(oracle.dijkstra_runs(), 0u);
  EXPECT_EQ(oracle.bfs_runs(), 0u);
  EXPECT_EQ(oracle.label_queries(), 4u);
  // Full-vector requests still use the Dijkstra+LRU path.
  const auto from0 = oracle.LatenciesFrom(0);
  ASSERT_TRUE(from0.valid());
  EXPECT_EQ(oracle.dijkstra_runs(), 1u);
  // Detaching restores the LRU backend.
  oracle.SetHubLabels(nullptr);
  EXPECT_EQ(oracle.backend(), PathOracleBackend::kLru);
}

TEST(PathOracleHubBackendTest, BackendsAgreeBitForBit) {
  const AsGraph g = GenerateInternetTopology(ScaledTopologyParams(300, 9));
  const HubLabels labels(g);
  PathOracle lru(g);
  PathOracle hub(g);
  hub.SetHubLabels(&labels);
  Rng rng(42);
  for (int i = 0; i < 200; ++i) {
    const AsId a = AsId(rng.NextBounded(g.num_nodes()));
    const AsId b = AsId(rng.NextBounded(g.num_nodes()));
    EXPECT_EQ(lru.LinkLatencyMs(a, b), hub.LinkLatencyMs(a, b));
    EXPECT_EQ(lru.Hops(a, b), hub.Hops(a, b));
    EXPECT_EQ(lru.RttMs(a, b), hub.RttMs(a, b));
  }
}

TEST(PathOracleHubBackendTest, RejectsLabelsForDifferentGraph) {
  const AsGraph small = MakeDiamond();
  const AsGraph big = GenerateInternetTopology(ScaledTopologyParams(50, 1));
  const HubLabels labels(small);
  PathOracle oracle(big);
  EXPECT_THROW(oracle.SetHubLabels(&labels), std::invalid_argument);
}

TEST(QuantizeLatencyTest, SnapsToGridAndStaysPositive) {
  EXPECT_DOUBLE_EQ(QuantizeLatencyMs(1.0), 1.0);  // already on the grid
  EXPECT_DOUBLE_EQ(QuantizeLatencyMs(0.0), kLatencyGridMs);
  EXPECT_DOUBLE_EQ(QuantizeLatencyMs(0.008), kLatencyGridMs);
  const double q = QuantizeLatencyMs(37.123456);
  EXPECT_DOUBLE_EQ(q / kLatencyGridMs, std::round(q / kLatencyGridMs));
  EXPECT_NEAR(q, 37.123456, kLatencyGridMs / 2 + 1e-12);
}

}  // namespace
}  // namespace dmap
