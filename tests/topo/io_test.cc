#include "topo/io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "topo/generator.h"

namespace dmap {
namespace {

TEST(TopologyIoTest, RoundTripPreservesEverything) {
  const AsGraph original =
      GenerateInternetTopology(ScaledTopologyParams(200, 77));
  std::stringstream buffer;
  SaveTopology(original, buffer);
  const AsGraph loaded = LoadTopology(buffer);

  ASSERT_EQ(loaded.num_nodes(), original.num_nodes());
  ASSERT_EQ(loaded.num_links(), original.num_links());
  for (AsId v = 0; v < original.num_nodes(); ++v) {
    EXPECT_DOUBLE_EQ(loaded.IntraLatencyMs(v), original.IntraLatencyMs(v));
    EXPECT_DOUBLE_EQ(loaded.EndNodeWeight(v), original.EndNodeWeight(v));
  }
  for (std::size_t i = 0; i < original.links().size(); ++i) {
    EXPECT_EQ(loaded.links()[i].a, original.links()[i].a);
    EXPECT_EQ(loaded.links()[i].b, original.links()[i].b);
    EXPECT_DOUBLE_EQ(loaded.links()[i].latency_ms,
                     original.links()[i].latency_ms);
  }
}

TEST(TopologyIoTest, RejectsBadMagic) {
  std::stringstream buffer("not-a-topology\n");
  EXPECT_THROW(LoadTopology(buffer), std::runtime_error);
}

TEST(TopologyIoTest, RejectsTruncatedFile) {
  std::stringstream buffer("dmap-topology v1\nnodes 3\nlinks 1\n");
  EXPECT_THROW(LoadTopology(buffer), std::runtime_error);
}

TEST(TopologyIoTest, RejectsOutOfRangeNodeId) {
  std::stringstream buffer(
      "dmap-topology v1\nnodes 2\nlinks 0\n"
      "node 0 1.0 1.0\nnode 5 1.0 1.0\n");
  EXPECT_THROW(LoadTopology(buffer), std::runtime_error);
}

TEST(TopologyIoTest, RejectsDuplicateNode) {
  std::stringstream buffer(
      "dmap-topology v1\nnodes 2\nlinks 0\n"
      "node 0 1.0 1.0\nnode 0 2.0 2.0\n");
  EXPECT_THROW(LoadTopology(buffer), std::runtime_error);
}

TEST(TopologyIoTest, RejectsBadLinkRecord) {
  std::stringstream buffer(
      "dmap-topology v1\nnodes 2\nlinks 1\n"
      "node 0 1.0 1.0\nnode 1 1.0 1.0\nlink 0\n");
  EXPECT_THROW(LoadTopology(buffer), std::runtime_error);
}

TEST(TopologyIoTest, FileRoundTrip) {
  const AsGraph original =
      GenerateInternetTopology(ScaledTopologyParams(100, 3));
  const std::string path = testing::TempDir() + "/topo_io_test.topology";
  SaveTopologyToFile(original, path);
  const AsGraph loaded = LoadTopologyFromFile(path);
  EXPECT_EQ(loaded.num_nodes(), original.num_nodes());
  EXPECT_EQ(loaded.num_links(), original.num_links());
}

TEST(TopologyIoTest, MissingFileThrows) {
  EXPECT_THROW(LoadTopologyFromFile("/nonexistent/path/x.topology"),
               std::runtime_error);
}

}  // namespace
}  // namespace dmap
