#include "common/ipv6.h"

#include <gtest/gtest.h>

namespace dmap {
namespace {

TEST(Ipv6AddressTest, ParseFullForm) {
  const auto addr =
      Ipv6Address::Parse("2001:0db8:0000:0000:0000:ff00:0042:8329");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->hi(), 0x20010db800000000ULL);
  EXPECT_EQ(addr->lo(), 0x0000ff0000428329ULL);
}

TEST(Ipv6AddressTest, ParseCompressed) {
  const auto addr = Ipv6Address::Parse("2001:db8::ff00:42:8329");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->hi(), 0x20010db800000000ULL);
  EXPECT_EQ(addr->lo(), 0x0000ff0000428329ULL);
}

TEST(Ipv6AddressTest, ParseEdgeForms) {
  auto addr = Ipv6Address::Parse("::");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(*addr, Ipv6Address(0, 0));

  addr = Ipv6Address::Parse("::1");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(*addr, Ipv6Address(0, 1));

  addr = Ipv6Address::Parse("fe80::");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->hi(), 0xfe80000000000000ULL);
  EXPECT_EQ(addr->lo(), 0u);

  addr = Ipv6Address::Parse("FFFF:ffff:FFFF:ffff:FFFF:ffff:FFFF:ffff");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->hi(), ~std::uint64_t{0});
  EXPECT_EQ(addr->lo(), ~std::uint64_t{0});
}

TEST(Ipv6AddressTest, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv6Address::Parse("").has_value());
  EXPECT_FALSE(Ipv6Address::Parse("1:2:3").has_value());           // short
  EXPECT_FALSE(Ipv6Address::Parse("1:2:3:4:5:6:7:8:9").has_value());
  EXPECT_FALSE(Ipv6Address::Parse("1::2::3").has_value());         // two ::
  EXPECT_FALSE(Ipv6Address::Parse("12345::").has_value());         // 5 hex
  EXPECT_FALSE(Ipv6Address::Parse("g::1").has_value());            // non-hex
  EXPECT_FALSE(Ipv6Address::Parse("1:2:3:4:5:6:7:").has_value());
  EXPECT_FALSE(
      Ipv6Address::Parse("1:2:3:4::5:6:7:8").has_value());  // :: covers 0
}

TEST(Ipv6AddressTest, CanonicalFormatting) {
  // RFC 5952: longest zero run compressed, leftmost on tie, no 1-group
  // compression, lowercase.
  EXPECT_EQ(Ipv6Address(0, 0).ToString(), "::");
  EXPECT_EQ(Ipv6Address(0, 1).ToString(), "::1");
  EXPECT_EQ(Ipv6Address::Parse("2001:db8::ff00:42:8329")->ToString(),
            "2001:db8::ff00:42:8329");
  EXPECT_EQ(Ipv6Address::Parse("2001:0:0:1:0:0:0:1")->ToString(),
            "2001:0:0:1::1");  // longest run wins
  EXPECT_EQ(Ipv6Address::Parse("2001:db8:0:1:1:1:1:1")->ToString(),
            "2001:db8:0:1:1:1:1:1");  // single zero group not compressed
  EXPECT_EQ(Ipv6Address::Parse("fe80::")->ToString(), "fe80::");
}

TEST(Ipv6AddressTest, RoundTripThroughText) {
  for (const auto& [hi, lo] :
       std::vector<std::pair<std::uint64_t, std::uint64_t>>{
           {0x20010db8deadbeefULL, 0x0123456789abcdefULL},
           {0, 0x8000000000000000ULL},
           {0xffff000000000000ULL, 0},
       }) {
    const Ipv6Address original(hi, lo);
    const auto parsed = Ipv6Address::Parse(original.ToString());
    ASSERT_TRUE(parsed.has_value()) << original.ToString();
    EXPECT_EQ(*parsed, original);
  }
}

TEST(Ipv6AddressTest, GroupAccessor) {
  const Ipv6Address addr(0x0001000200030004ULL, 0x0005000600070008ULL);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(addr.Group(i), i + 1);
  }
}

TEST(Cidr6Test, CanonicalisesBase) {
  const auto base = Ipv6Address::Parse("2001:db8:1234:5678::9");
  const Cidr6 prefix(*base, 48);
  EXPECT_EQ(prefix.ToString(), "2001:db8:1234::/48");
}

TEST(Cidr6Test, ContainsAcrossTheHalfBoundary) {
  const auto prefix = Cidr6::Parse("2001:db8::/32");
  ASSERT_TRUE(prefix.has_value());
  EXPECT_TRUE(prefix->Contains(*Ipv6Address::Parse("2001:db8::1")));
  EXPECT_TRUE(prefix->Contains(
      *Ipv6Address::Parse("2001:db8:ffff:ffff:ffff:ffff:ffff:ffff")));
  EXPECT_FALSE(prefix->Contains(*Ipv6Address::Parse("2001:db9::")));

  const auto host = Cidr6::Parse("::1/128");
  ASSERT_TRUE(host.has_value());
  EXPECT_TRUE(host->Contains(Ipv6Address(0, 1)));
  EXPECT_FALSE(host->Contains(Ipv6Address(0, 2)));

  const auto long_prefix = Cidr6::Parse("2001:db8::/96");
  ASSERT_TRUE(long_prefix.has_value());
  EXPECT_TRUE(long_prefix->Contains(*Ipv6Address::Parse("2001:db8::42")));
  EXPECT_FALSE(
      long_prefix->Contains(*Ipv6Address::Parse("2001:db8::1:0:42")));
}

TEST(Cidr6Test, ParseValidation) {
  EXPECT_FALSE(Cidr6::Parse("2001:db8::").has_value());      // no length
  EXPECT_FALSE(Cidr6::Parse("2001:db8::/129").has_value());
  EXPECT_FALSE(Cidr6::Parse("2001:db8::/x").has_value());
  EXPECT_FALSE(Cidr6::Parse("nothex::/48").has_value());
  EXPECT_TRUE(Cidr6::Parse("::/0").has_value());
}

TEST(Cidr6Test, RoutingSegmentProjection) {
  const auto p48 = Cidr6::Parse("2001:db8:1234::/48");
  ASSERT_TRUE(p48.has_value());
  const auto segment = p48->ToRoutingSegment();
  EXPECT_EQ(segment.base, 0x20010db812340000ULL);
  EXPECT_EQ(segment.size, std::uint64_t{1} << 16);

  const auto p64 = Cidr6::Parse("2001:db8:1234:5678::/64");
  ASSERT_TRUE(p64.has_value());
  EXPECT_EQ(p64->ToRoutingSegment().size, 1u);

  const auto p96 = Cidr6::Parse("2001:db8::/96");
  ASSERT_TRUE(p96.has_value());
  EXPECT_THROW(p96->ToRoutingSegment(), std::invalid_argument);
}

TEST(Cidr6Test, BadLengthThrows) {
  EXPECT_THROW(Cidr6(Ipv6Address(0, 0), -1), std::invalid_argument);
  EXPECT_THROW(Cidr6(Ipv6Address(0, 0), 129), std::invalid_argument);
}

}  // namespace
}  // namespace dmap
