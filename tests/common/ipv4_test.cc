#include "common/ipv4.h"

#include <gtest/gtest.h>

namespace dmap {
namespace {

TEST(Ipv4AddressTest, OctetConstruction) {
  const auto addr = Ipv4Address::FromOctets(192, 168, 1, 20);
  EXPECT_EQ(addr.value(), 0xc0a80114u);
  EXPECT_EQ(addr.ToString(), "192.168.1.20");
}

TEST(Ipv4AddressTest, ParseValid) {
  Ipv4Address addr;
  ASSERT_TRUE(Ipv4Address::Parse("8.8.8.8", &addr));
  EXPECT_EQ(addr, Ipv4Address::FromOctets(8, 8, 8, 8));
  ASSERT_TRUE(Ipv4Address::Parse("0.0.0.0", &addr));
  EXPECT_EQ(addr.value(), 0u);
  ASSERT_TRUE(Ipv4Address::Parse("255.255.255.255", &addr));
  EXPECT_EQ(addr.value(), 0xffffffffu);
}

TEST(Ipv4AddressTest, ParseInvalid) {
  Ipv4Address addr;
  EXPECT_FALSE(Ipv4Address::Parse("", &addr));
  EXPECT_FALSE(Ipv4Address::Parse("1.2.3", &addr));
  EXPECT_FALSE(Ipv4Address::Parse("1.2.3.4.5", &addr));
  EXPECT_FALSE(Ipv4Address::Parse("256.1.1.1", &addr));
  EXPECT_FALSE(Ipv4Address::Parse("1.2.3.4 ", &addr));
  EXPECT_FALSE(Ipv4Address::Parse("a.b.c.d", &addr));
  EXPECT_FALSE(Ipv4Address::Parse("1..2.3", &addr));
}

TEST(IpDistanceTest, MatchesAbsoluteDifference) {
  // The paper's bitwise-weighted definition sum |A_i - B_i| 2^i equals the
  // absolute integer difference.
  const Ipv4Address a(100), b(300);
  EXPECT_EQ(IpDistance(a, b), 200u);
  EXPECT_EQ(IpDistance(b, a), 200u);
  EXPECT_EQ(IpDistance(a, a), 0u);
  // No overflow at the extremes.
  EXPECT_EQ(IpDistance(Ipv4Address(0), Ipv4Address(0xffffffff)),
            0xffffffffull);
}

TEST(CidrTest, CanonicalisesBase) {
  const Cidr c(Ipv4Address::FromOctets(10, 1, 2, 3), 16);
  EXPECT_EQ(c.base(), Ipv4Address::FromOctets(10, 1, 0, 0));
  EXPECT_EQ(c.ToString(), "10.1.0.0/16");
}

TEST(CidrTest, ContainsBoundaries) {
  const Cidr c(Ipv4Address::FromOctets(10, 1, 0, 0), 16);
  EXPECT_TRUE(c.Contains(c.First()));
  EXPECT_TRUE(c.Contains(c.Last()));
  EXPECT_TRUE(c.Contains(Ipv4Address::FromOctets(10, 1, 200, 7)));
  EXPECT_FALSE(c.Contains(Ipv4Address::FromOctets(10, 2, 0, 0)));
  EXPECT_FALSE(c.Contains(Ipv4Address::FromOctets(10, 0, 255, 255)));
}

TEST(CidrTest, SlashZeroCoversEverything) {
  const Cidr all(Ipv4Address(12345), 0);
  EXPECT_EQ(all.Size(), 1ull << 32);
  EXPECT_TRUE(all.Contains(Ipv4Address(0)));
  EXPECT_TRUE(all.Contains(Ipv4Address(0xffffffff)));
  EXPECT_EQ(all.base().value(), 0u);
}

TEST(CidrTest, SlashThirtyTwoIsSingleAddress) {
  const Cidr host(Ipv4Address::FromOctets(1, 2, 3, 4), 32);
  EXPECT_EQ(host.Size(), 1u);
  EXPECT_EQ(host.First(), host.Last());
  EXPECT_TRUE(host.Contains(Ipv4Address::FromOctets(1, 2, 3, 4)));
  EXPECT_FALSE(host.Contains(Ipv4Address::FromOctets(1, 2, 3, 5)));
}

TEST(CidrTest, DistanceToAddress) {
  const Cidr c(Ipv4Address(1000), 24);  // canonicalises to 768..1023
  EXPECT_EQ(c.DistanceTo(Ipv4Address(800)), 0u);   // inside
  EXPECT_EQ(c.DistanceTo(Ipv4Address(700)), 68u);  // below: 768 - 700
  EXPECT_EQ(c.DistanceTo(Ipv4Address(1100)), 77u); // above: 1100 - 1023
}

TEST(CidrTest, ParseRoundTrip) {
  Cidr c;
  ASSERT_TRUE(Cidr::Parse("67.10.0.0/16", &c));
  EXPECT_EQ(c, Cidr(Ipv4Address::FromOctets(67, 10, 0, 0), 16));
  ASSERT_TRUE(Cidr::Parse("8.0.0.0/8", &c));
  EXPECT_EQ(c.Size(), 1ull << 24);
  EXPECT_EQ(c.ToString(), "8.0.0.0/8");
}

TEST(CidrTest, ParseInvalid) {
  Cidr c;
  EXPECT_FALSE(Cidr::Parse("", &c));
  EXPECT_FALSE(Cidr::Parse("1.2.3.4", &c));       // no slash
  EXPECT_FALSE(Cidr::Parse("1.2.3.4/33", &c));    // bad length
  EXPECT_FALSE(Cidr::Parse("1.2.3.4/-1", &c));
  EXPECT_FALSE(Cidr::Parse("1.2.3/8", &c));
  EXPECT_FALSE(Cidr::Parse("1.2.3.4/8x", &c));
}

}  // namespace
}  // namespace dmap
