#include "common/config.h"

#include <gtest/gtest.h>

#include <fstream>

namespace dmap {
namespace {

TEST(ConfigTest, ParsesTypedValues) {
  const Config c = Config::ParseString(
      "name = fig4\n"
      "ases = 26424\n"
      "fraction = 0.52\n"
      "local_replica = true\n"
      "ks = 1, 3, 5\n"
      "churn = 0.0, 0.05, 0.10\n");
  EXPECT_EQ(c.GetString("name", ""), "fig4");
  EXPECT_EQ(c.GetInt("ases", 0), 26424);
  EXPECT_DOUBLE_EQ(c.GetDouble("fraction", 0), 0.52);
  EXPECT_TRUE(c.GetBool("local_replica", false));
  EXPECT_EQ(c.GetIntList("ks", {}), (std::vector<std::int64_t>{1, 3, 5}));
  EXPECT_EQ(c.GetDoubleList("churn", {}),
            (std::vector<double>{0.0, 0.05, 0.10}));
}

TEST(ConfigTest, DefaultsWhenAbsent) {
  const Config c = Config::ParseString("present = 1\n");
  EXPECT_EQ(c.GetInt("absent", 42), 42);
  EXPECT_EQ(c.GetString("absent", "x"), "x");
  EXPECT_FALSE(c.GetBool("absent", false));
  EXPECT_EQ(c.GetIntList("absent", {7}), (std::vector<std::int64_t>{7}));
  EXPECT_TRUE(c.Has("present"));
  EXPECT_FALSE(c.Has("absent"));
}

TEST(ConfigTest, CommentsAndWhitespace) {
  const Config c = Config::ParseString(
      "# full-line comment\n"
      "\n"
      "  key  =  value with spaces  # trailing comment\n");
  EXPECT_EQ(c.GetString("key", ""), "value with spaces");
}

TEST(ConfigTest, BooleanSpellings) {
  const Config c = Config::ParseString(
      "a = true\nb = YES\nc = 1\nd = off\ne = False\nf = 0\n");
  EXPECT_TRUE(c.GetBool("a", false));
  EXPECT_TRUE(c.GetBool("b", false));
  EXPECT_TRUE(c.GetBool("c", false));
  EXPECT_FALSE(c.GetBool("d", true));
  EXPECT_FALSE(c.GetBool("e", true));
  EXPECT_FALSE(c.GetBool("f", true));
}

TEST(ConfigTest, ParseErrors) {
  EXPECT_THROW(Config::ParseString("no equals sign\n"), std::runtime_error);
  EXPECT_THROW(Config::ParseString("= value\n"), std::runtime_error);
  EXPECT_THROW(Config::ParseString("a = 1\na = 2\n"), std::runtime_error);
}

TEST(ConfigTest, TypeErrors) {
  const Config c = Config::ParseString(
      "int = notanumber\nfloat = 1.2.3\nbool = maybe\nlist = 1, x\n");
  EXPECT_THROW(c.GetInt("int", 0), std::runtime_error);
  EXPECT_THROW(c.GetDouble("float", 0), std::runtime_error);
  EXPECT_THROW(c.GetBool("bool", false), std::runtime_error);
  EXPECT_THROW(c.GetIntList("list", {}), std::runtime_error);
}

TEST(ConfigTest, RequireThrowsWhenMissing) {
  const Config c = Config::ParseString("a = 1\n");
  EXPECT_EQ(c.RequireString("a"), "1");
  EXPECT_THROW(c.RequireString("b"), std::runtime_error);
}

TEST(ConfigTest, UnusedKeysCatchTypos) {
  const Config c = Config::ParseString("ases = 10\nasse = 20\n");
  EXPECT_EQ(c.GetInt("ases", 0), 10);
  const auto unused = c.UnusedKeys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "asse");
}

TEST(ConfigTest, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/config_test.conf";
  {
    std::ofstream out(path);
    out << "x = 5\n";
  }
  EXPECT_EQ(Config::ParseFile(path).GetInt("x", 0), 5);
  EXPECT_THROW(Config::ParseFile("/nonexistent/x.conf"), std::runtime_error);
}

}  // namespace
}  // namespace dmap
