#include "common/sampler.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace dmap {
namespace {

TEST(AliasSamplerTest, RejectsInvalidWeights) {
  EXPECT_THROW(AliasSampler(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(AliasSampler(std::vector<double>{0.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(AliasSampler(std::vector<double>{1.0, -0.5}),
               std::invalid_argument);
}

TEST(AliasSamplerTest, NormalisesProbabilities) {
  const AliasSampler sampler(std::vector<double>{2.0, 6.0});
  EXPECT_DOUBLE_EQ(sampler.Probability(0), 0.25);
  EXPECT_DOUBLE_EQ(sampler.Probability(1), 0.75);
}

TEST(AliasSamplerTest, SingleBucketAlwaysSampled) {
  const AliasSampler sampler(std::vector<double>{5.0});
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.Sample(rng), 0u);
}

TEST(AliasSamplerTest, ZeroWeightNeverSampled) {
  const AliasSampler sampler(std::vector<double>{1.0, 0.0, 1.0});
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) EXPECT_NE(sampler.Sample(rng), 1u);
}

TEST(AliasSamplerTest, EmpiricalMatchesWeights) {
  const std::vector<double> weights{1.0, 2.0, 3.0, 4.0, 10.0};
  const AliasSampler sampler(weights);
  Rng rng(3);
  constexpr int kDraws = 400000;
  std::vector<int> counts(weights.size(), 0);
  for (int i = 0; i < kDraws; ++i) ++counts[sampler.Sample(rng)];
  const double total = 20.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double expected = weights[i] / total * kDraws;
    EXPECT_NEAR(counts[i], expected, 5 * std::sqrt(expected))
        << "bucket " << i;
  }
}

TEST(AliasSamplerTest, HeavyTailedWeightsStillExact) {
  // Pathological spread exercises the small/large pairing loop.
  std::vector<double> weights(100, 1e-6);
  weights[0] = 1e6;
  const AliasSampler sampler(weights);
  Rng rng(4);
  int zero_count = 0;
  constexpr int kDraws = 10000;
  for (int i = 0; i < kDraws; ++i) {
    if (sampler.Sample(rng) == 0) ++zero_count;
  }
  // P(0) = 1e6 / (1e6 + 99 * 1e-6) ~ 1 - 1e-10.
  EXPECT_EQ(zero_count, kDraws);
}

TEST(AliasSamplerTest, UniformWeightsChiSquared) {
  const std::vector<double> weights(20, 1.0);
  const AliasSampler sampler(weights);
  Rng rng(5);
  constexpr int kDraws = 100000;
  std::vector<int> counts(20, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[sampler.Sample(rng)];
  const double expected = kDraws / 20.0;
  double chi2 = 0;
  for (const int c : counts) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  EXPECT_LT(chi2, 43.8);  // 99.9% critical value, 19 dof
}

}  // namespace
}  // namespace dmap
