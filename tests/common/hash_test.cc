#include "common/hash.h"

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>
#include <vector>

namespace dmap {
namespace {

std::vector<std::uint8_t> Bytes(const std::string& s) {
  return {s.begin(), s.end()};
}

// Official SipHash-2-4 test vectors (Aumasson & Bernstein reference code):
// key = 00 01 .. 0f, input = 00 01 .. (len-1).
TEST(SipHashTest, ReferenceVectors) {
  const std::uint64_t k0 = 0x0706050403020100ULL;
  const std::uint64_t k1 = 0x0f0e0d0c0b0a0908ULL;
  const std::uint64_t expected[] = {
      0x726fdb47dd0e0e31ULL, 0x74f839c593dc67fdULL, 0x0d6c8009d9a94f5aULL,
      0x85676696d7fb7e2dULL, 0xcf2794e0277187b7ULL, 0x18765564cd99a68dULL,
      0xcbc9466e58fee3ceULL, 0xab0200f58b01d137ULL, 0x93f5f5799a932462ULL,
  };
  std::vector<std::uint8_t> data;
  for (std::size_t len = 0; len < std::size(expected); ++len) {
    EXPECT_EQ(SipHash24(k0, k1, data), expected[len]) << "len=" << len;
    data.push_back(std::uint8_t(len));
  }
}

TEST(SipHashTest, KeySensitivity) {
  const auto data = Bytes("hello world");
  EXPECT_NE(SipHash24(1, 2, data), SipHash24(1, 3, data));
  EXPECT_NE(SipHash24(1, 2, data), SipHash24(2, 2, data));
}

TEST(SipHashTest, DataSensitivity) {
  EXPECT_NE(SipHash24(1, 2, Bytes("abc")), SipHash24(1, 2, Bytes("abd")));
  EXPECT_NE(SipHash24(1, 2, Bytes("abc")), SipHash24(1, 2, Bytes("abc ")));
}

// FIPS 180-1 / RFC 3174 test vectors.
TEST(Sha1Test, KnownDigests) {
  const std::map<std::string, std::string> vectors = {
      {"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"},
      {"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"},
      {"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
       "84983e441c3bd26ebaae4aa1f95129e5e54670f1"},
      {"The quick brown fox jumps over the lazy dog",
       "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12"},
  };
  for (const auto& [input, want_hex] : vectors) {
    const auto digest = Sha1(Bytes(input));
    std::string got;
    for (const std::uint8_t b : digest) {
      char buf[3];
      std::snprintf(buf, sizeof(buf), "%02x", b);
      got += buf;
    }
    EXPECT_EQ(got, want_hex) << "input: '" << input << "'";
  }
}

TEST(Sha1Test, PaddingBoundaries) {
  // Lengths 55, 56, 63, 64 exercise the padding edge cases; distinct
  // digests demonstrate the block handling does not alias.
  std::vector<std::array<std::uint8_t, 20>> digests;
  for (const std::size_t len : {55u, 56u, 63u, 64u, 65u}) {
    digests.push_back(Sha1(std::vector<std::uint8_t>(len, 'x')));
  }
  for (std::size_t i = 0; i < digests.size(); ++i) {
    for (std::size_t j = i + 1; j < digests.size(); ++j) {
      EXPECT_NE(digests[i], digests[j]);
    }
  }
}

TEST(GuidFromKeyMaterialTest, MatchesSha1) {
  const auto material = Bytes("my public key");
  const Guid guid = GuidFromKeyMaterial(material);
  const auto digest = Sha1(material);
  // First word equals the big-endian first 4 digest bytes.
  const std::uint32_t want = (std::uint32_t(digest[0]) << 24) |
                             (std::uint32_t(digest[1]) << 16) |
                             (std::uint32_t(digest[2]) << 8) |
                             std::uint32_t(digest[3]);
  EXPECT_EQ(guid.word(0), want);
}

TEST(GuidHashFamilyTest, DeterministicAcrossInstances) {
  // Two gateways configured with the same (K, seed) must agree on every
  // replica address — the crux of DMap's locally-derivable placement.
  const GuidHashFamily a(5, 77), b(5, 77);
  const Guid g = Guid::FromSequence(42);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(a.Hash(g, i), b.Hash(g, i));
    EXPECT_EQ(a.Rehash(Ipv4Address(123), i), b.Rehash(Ipv4Address(123), i));
  }
}

TEST(GuidHashFamilyTest, FunctionsAreIndependent) {
  const GuidHashFamily family(5, 77);
  const Guid g = Guid::FromSequence(42);
  const auto all = family.HashAll(g);
  ASSERT_EQ(all.size(), 5u);
  for (std::size_t i = 0; i < all.size(); ++i) {
    for (std::size_t j = i + 1; j < all.size(); ++j) {
      EXPECT_NE(all[i], all[j]) << "h" << i << " == h" << j;
    }
  }
}

TEST(GuidHashFamilyTest, SeedChangesPlacement) {
  const GuidHashFamily a(3, 1), b(3, 2);
  const Guid g = Guid::FromSequence(42);
  EXPECT_NE(a.Hash(g, 0), b.Hash(g, 0));
}

TEST(GuidHashFamilyTest, OutputCoversAddressSpaceUniformly) {
  const GuidHashFamily family(1, 9);
  // Bucket the top 4 bits; chi-squared over 16 buckets, 10k draws.
  std::vector<int> counts(16, 0);
  constexpr int kDraws = 10000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[family.Hash(Guid::FromSequence(std::uint64_t(i)), 0).value() >>
             28];
  }
  const double expected = kDraws / 16.0;
  double chi2 = 0;
  for (const int c : counts) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  EXPECT_LT(chi2, 37.7);  // 99.9% critical value, 15 dof
}

TEST(GuidHashFamilyTest, BatchedHashAllMatchesScalarHash) {
  // The interleaved-lane kernel must be bit-identical to the scalar path
  // for every K (full 4-lane blocks, scalar remainders, K < 4).
  for (const int k : {1, 2, 3, 4, 5, 7, 8, 9, 16}) {
    const GuidHashFamily family(k, 0x5eedf00dULL);
    for (std::uint64_t s = 0; s < 50; ++s) {
      const Guid g = Guid::FromSequence(s * 7919 + 3);
      std::vector<Ipv4Address> batched;
      batched.resize(std::size_t(k));
      family.HashAllInto(g, batched.data());
      for (int i = 0; i < k; ++i) {
        EXPECT_EQ(batched[std::size_t(i)].value(), family.Hash(g, i).value())
            << "k=" << k << " i=" << i << " s=" << s;
      }
    }
  }
}

TEST(GuidHashFamilyTest, BatchedRehashMatchesScalarRehash) {
  const GuidHashFamily family(5, 0x5eedf00dULL);
  // Mixed lanes and a batch size exercising both the 4-wide kernel and the
  // scalar tail.
  std::vector<Ipv4Address> addrs;
  std::vector<int> lanes;
  for (int j = 0; j < 23; ++j) {
    addrs.push_back(Ipv4Address(0x9e3779b9u * std::uint32_t(j + 1)));
    lanes.push_back(j % 5);
  }
  std::vector<Ipv4Address> batched(addrs.size());
  family.RehashManyInto(addrs.data(), lanes.data(), addrs.size(),
                        batched.data());
  for (std::size_t j = 0; j < addrs.size(); ++j) {
    EXPECT_EQ(batched[j].value(),
              family.Rehash(addrs[j], lanes[j]).value())
        << "j=" << j;
  }
}

TEST(GuidHashFamilyTest, HashAllUsesBatchedKernel) {
  const GuidHashFamily family(6, 99);
  const Guid g = Guid::FromSequence(123);
  const std::vector<Ipv4Address> all = family.HashAll(g);
  ASSERT_EQ(all.size(), 6u);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(all[std::size_t(i)].value(), family.Hash(g, i).value());
  }
}

TEST(GuidHashFamilyTest, RehashChainsDoNotCycleQuickly) {
  const GuidHashFamily family(1, 10);
  Ipv4Address addr(0x12345678);
  std::vector<std::uint32_t> seen{addr.value()};
  for (int i = 0; i < 64; ++i) {
    addr = family.Rehash(addr, 0);
    for (const std::uint32_t prev : seen) EXPECT_NE(addr.value(), prev);
    seen.push_back(addr.value());
  }
}

}  // namespace
}  // namespace dmap
