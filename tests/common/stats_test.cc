#include "common/stats.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dmap {
namespace {

TEST(StreamingStatsTest, EmptyIsZero) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(StreamingStatsTest, KnownMoments) {
  StreamingStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
}

TEST(StreamingStatsTest, SingleSampleVarianceIsZero) {
  StreamingStats s;
  s.Add(42.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 42.0);
  EXPECT_EQ(s.max(), 42.0);
}

TEST(StreamingStatsTest, NumericallyStableForLargeOffsets) {
  // Welford should not lose precision when values share a huge offset.
  StreamingStats s;
  for (int i = 0; i < 1000; ++i) s.Add(1e9 + (i % 2));
  EXPECT_NEAR(s.mean(), 1e9 + 0.5, 1e-3);
  EXPECT_NEAR(s.variance(), 0.25, 0.01);
}

TEST(SampleSetTest, QuantilesOfKnownSet) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.Add(double(i));
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 50.5);
  EXPECT_NEAR(s.Quantile(0.95), 95.05, 1e-9);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(SampleSetTest, QuantileValidation) {
  SampleSet s;
  EXPECT_THROW(s.Quantile(0.5), std::logic_error);
  s.Add(1.0);
  EXPECT_THROW(s.Quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(s.Quantile(1.1), std::invalid_argument);
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 1.0);
}

TEST(SampleSetTest, InterleavedAddAndQuery) {
  // Adding after a query must re-sort transparently.
  SampleSet s;
  s.Add(10);
  s.Add(30);
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 20.0);
  s.Add(20);
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 20.0);
  s.Add(0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
}

TEST(SampleSetTest, CdfAt) {
  SampleSet s;
  for (const double x : {1.0, 2.0, 3.0, 4.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.CdfAt(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.CdfAt(1.0), 0.25);
  EXPECT_DOUBLE_EQ(s.CdfAt(2.5), 0.5);
  EXPECT_DOUBLE_EQ(s.CdfAt(4.0), 1.0);
  EXPECT_DOUBLE_EQ(s.CdfAt(99.0), 1.0);
}

TEST(SampleSetTest, CdfLogSpacedCoversRangeAndIsMonotone) {
  SampleSet s;
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) s.Add(rng.NextLogNormal(3.0, 1.0));
  const auto cdf = s.CdfLogSpaced(50);
  ASSERT_EQ(cdf.size(), 50u);
  EXPECT_NEAR(cdf.front().x, s.min(), 1e-9);
  EXPECT_NEAR(cdf.back().x, s.max(), s.max() * 1e-9);
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GT(cdf[i].x, cdf[i - 1].x);
    EXPECT_GE(cdf[i].fraction, cdf[i - 1].fraction);
  }
}

TEST(SampleSetTest, CdfLogSpacedEdgeCases) {
  SampleSet s;
  EXPECT_TRUE(s.CdfLogSpaced(10).empty());
  s.Add(5.0);
  EXPECT_TRUE(s.CdfLogSpaced(1).empty());  // need at least 2 points
  const auto cdf = s.CdfLogSpaced(2);
  ASSERT_EQ(cdf.size(), 2u);
}

TEST(SampleSetTest, CdfLinearSpacedCoversRange) {
  SampleSet s;
  for (int i = 0; i <= 100; ++i) s.Add(double(i));
  const auto cdf = s.CdfLinearSpaced(11);
  ASSERT_EQ(cdf.size(), 11u);
  EXPECT_DOUBLE_EQ(cdf.front().x, 0.0);
  EXPECT_DOUBLE_EQ(cdf.back().x, 100.0);
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
  // Uniform samples: linear CDF.
  EXPECT_NEAR(cdf[5].x, 50.0, 1e-9);
  EXPECT_NEAR(cdf[5].fraction, 0.5, 0.01);
  EXPECT_TRUE(s.CdfLinearSpaced(1).empty());
  EXPECT_TRUE(SampleSet{}.CdfLinearSpaced(5).empty());
}

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable table({"K", "mean", "p95"});
  table.AddRow({"1", "74.5", "172.8"});
  table.AddRow({"5", "49.1", "86.1"});
  const std::string out = table.Render();
  EXPECT_NE(out.find("| K | mean | p95   |"), std::string::npos);
  EXPECT_NE(out.find("| 5 | 49.1 | 86.1  |"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("|---|"), std::string::npos);
}

TEST(TextTableTest, RejectsMismatchedRow) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.AddRow({"only-one"}), std::invalid_argument);
}

TEST(TextTableTest, FormatDouble) {
  EXPECT_EQ(TextTable::FormatDouble(49.123, 1), "49.1");
  EXPECT_EQ(TextTable::FormatDouble(49.123, 3), "49.123");
  EXPECT_EQ(TextTable::FormatDouble(-0.5, 0), "-0");
}

}  // namespace
}  // namespace dmap
