#include "common/zipf.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

namespace dmap {
namespace {

TEST(MandelbrotZipfTest, PmfSumsToOne) {
  const MandelbrotZipf dist(1000, 1.02, 100.0);
  double total = 0;
  for (std::uint64_t k = 1; k <= 1000; ++k) total += dist.Pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(MandelbrotZipfTest, PmfIsMonotonicallyDecreasing) {
  const MandelbrotZipf dist(500, 1.02, 100.0);
  for (std::uint64_t k = 1; k < 500; ++k) {
    EXPECT_GE(dist.Pmf(k), dist.Pmf(k + 1)) << "rank " << k;
  }
}

TEST(MandelbrotZipfTest, PmfOutOfRangeIsZero) {
  const MandelbrotZipf dist(10, 1.0, 0.0);
  EXPECT_EQ(dist.Pmf(0), 0.0);
  EXPECT_EQ(dist.Pmf(11), 0.0);
}

TEST(MandelbrotZipfTest, QFlattensThePeak) {
  // The plateau parameter q reduces the probability mass of rank 1:
  // p(1) with q=100 must be far below p(1) with q=0.
  const MandelbrotZipf plain(1000, 1.02, 0.0);
  const MandelbrotZipf flattened(1000, 1.02, 100.0);
  EXPECT_GT(plain.Pmf(1), 5 * flattened.Pmf(1));
  // And the ratio p(1)/p(2) is close to 1 when q is large.
  EXPECT_NEAR(flattened.Pmf(1) / flattened.Pmf(2), 1.0, 0.02);
}

TEST(MandelbrotZipfTest, SamplesMatchPmf) {
  const MandelbrotZipf dist(100, 1.02, 100.0);
  Rng rng(17);
  constexpr int kDraws = 200000;
  std::vector<int> counts(101, 0);
  for (int i = 0; i < kDraws; ++i) {
    const auto rank = dist.Sample(rng);
    ASSERT_GE(rank, 1u);
    ASSERT_LE(rank, 100u);
    ++counts[rank];
  }
  for (std::uint64_t k = 1; k <= 100; ++k) {
    const double expected = dist.Pmf(k) * kDraws;
    EXPECT_NEAR(counts[k], expected, 5 * std::sqrt(expected) + 5)
        << "rank " << k;
  }
}

TEST(MandelbrotZipfTest, SingleElement) {
  const MandelbrotZipf dist(1, 1.02, 100.0);
  EXPECT_EQ(dist.Pmf(1), 1.0);
  Rng rng(1);
  EXPECT_EQ(dist.Sample(rng), 1u);
}

TEST(MandelbrotZipfTest, RejectsBadParameters) {
  EXPECT_THROW(MandelbrotZipf(0, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(MandelbrotZipf(10, 1.0, -1.0), std::invalid_argument);
}

TEST(ZipfWeightsTest, HasCorrectMassAndSkew) {
  Rng rng(3);
  const auto weights = ZipfWeights(1000, 1.0, rng);
  ASSERT_EQ(weights.size(), 1000u);
  // All positive; the largest weight is 1 (rank 1), smallest 1/1000.
  double max_w = 0, min_w = 1e9;
  for (const double w : weights) {
    EXPECT_GT(w, 0.0);
    max_w = std::max(max_w, w);
    min_w = std::min(min_w, w);
  }
  EXPECT_DOUBLE_EQ(max_w, 1.0);
  EXPECT_DOUBLE_EQ(min_w, 1.0 / 1000.0);
}

TEST(ZipfWeightsTest, ShuffleDecorrelatesRankFromIndex) {
  Rng rng(4);
  const auto weights = ZipfWeights(2000, 1.0, rng);
  // If unshuffled, weights would be strictly decreasing. Count ascents.
  int ascents = 0;
  for (std::size_t i = 1; i < weights.size(); ++i) {
    if (weights[i] > weights[i - 1]) ++ascents;
  }
  EXPECT_GT(ascents, 800);  // random permutation ~50% ascents
}

}  // namespace
}  // namespace dmap
