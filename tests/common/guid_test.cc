#include "common/guid.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

namespace dmap {
namespace {

TEST(GuidTest, DefaultIsZero) {
  Guid g;
  for (int i = 0; i < Guid::kWords; ++i) EXPECT_EQ(g.word(i), 0u);
}

TEST(GuidTest, FromSequenceIsDeterministic) {
  EXPECT_EQ(Guid::FromSequence(7), Guid::FromSequence(7));
  EXPECT_NE(Guid::FromSequence(7), Guid::FromSequence(8));
}

TEST(GuidTest, FromSequenceDiffusesConsecutiveSeeds) {
  // Consecutive sequence numbers must not produce structurally similar
  // GUIDs: every word should differ.
  const Guid a = Guid::FromSequence(1000);
  const Guid b = Guid::FromSequence(1001);
  for (int i = 0; i < Guid::kWords; ++i) {
    EXPECT_NE(a.word(i), b.word(i)) << "word " << i;
  }
}

TEST(GuidTest, HexRoundTrip) {
  const Guid g = Guid::FromSequence(123456789);
  const std::string hex = g.ToHex();
  EXPECT_EQ(hex.size(), 40u);
  Guid parsed;
  ASSERT_TRUE(Guid::FromHex(hex, &parsed));
  EXPECT_EQ(parsed, g);
}

TEST(GuidTest, HexOfZeroGuid) {
  EXPECT_EQ(Guid().ToHex(), std::string(40, '0'));
}

TEST(GuidTest, FromHexAcceptsUppercase) {
  const Guid g = Guid::FromSequence(55);
  std::string hex = g.ToHex();
  for (char& c : hex) c = char(std::toupper(c));
  Guid parsed;
  ASSERT_TRUE(Guid::FromHex(hex, &parsed));
  EXPECT_EQ(parsed, g);
}

TEST(GuidTest, FromHexRejectsBadInput) {
  Guid out;
  EXPECT_FALSE(Guid::FromHex("", &out));
  EXPECT_FALSE(Guid::FromHex("1234", &out));                    // too short
  EXPECT_FALSE(Guid::FromHex(std::string(41, '0'), &out));      // too long
  EXPECT_FALSE(Guid::FromHex(std::string(39, '0') + "g", &out));// non-hex
  EXPECT_FALSE(Guid::FromHex(std::string(39, '0') + " ", &out));
}

TEST(GuidTest, OrderingIsLexicographicByWords) {
  const Guid a(std::array<std::uint32_t, 5>{0, 0, 0, 0, 1});
  const Guid b(std::array<std::uint32_t, 5>{0, 0, 0, 1, 0});
  EXPECT_LT(a, b);
  EXPECT_GT(b, a);
}

TEST(GuidTest, FingerprintsAreWellDistributed) {
  std::unordered_set<std::uint64_t> fingerprints;
  constexpr int kCount = 10000;
  for (int i = 0; i < kCount; ++i) {
    fingerprints.insert(Guid::FromSequence(std::uint64_t(i)).Fingerprint64());
  }
  EXPECT_EQ(fingerprints.size(), std::size_t(kCount)) << "collision found";
}

TEST(GuidTest, UsableAsHashMapKey) {
  std::unordered_set<Guid, GuidHash> set;
  set.insert(Guid::FromSequence(1));
  set.insert(Guid::FromSequence(2));
  set.insert(Guid::FromSequence(1));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(Guid::FromSequence(2)));
  EXPECT_FALSE(set.contains(Guid::FromSequence(3)));
}

}  // namespace
}  // namespace dmap
