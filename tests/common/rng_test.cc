#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace dmap {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(1), b(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, BoundedStaysInBounds) {
  Rng rng(3);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, BoundedZeroReturnsZero) {
  Rng rng(3);
  EXPECT_EQ(rng.NextBounded(0), 0u);
}

TEST(RngTest, BoundedIsApproximatelyUniform) {
  Rng rng(4);
  constexpr std::uint64_t kBound = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBounded(kBound)];
  // Chi-squared with 9 dof; 99.9% critical value is 27.9.
  const double expected = double(kDraws) / double(kBound);
  double chi2 = 0;
  for (const int c : counts) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  EXPECT_LT(chi2, 27.9);
}

TEST(RngTest, RangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(7);
  constexpr int kDraws = 200000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < kDraws; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / kDraws;
  const double var = sum_sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, LogNormalMedian) {
  Rng rng(8);
  constexpr int kDraws = 100001;
  std::vector<double> draws(kDraws);
  for (auto& d : draws) d = rng.NextLogNormal(std::log(3.5), 0.9);
  std::nth_element(draws.begin(), draws.begin() + kDraws / 2, draws.end());
  // Median of a log-normal is exp(mu) = 3.5.
  EXPECT_NEAR(draws[kDraws / 2], 3.5, 0.15);
}

TEST(RngTest, ExponentialMeanAndPositivity) {
  Rng rng(9);
  constexpr int kDraws = 200000;
  double sum = 0;
  for (int i = 0; i < kDraws; ++i) {
    const double e = rng.NextExponential(42.0);
    ASSERT_GE(e, 0.0);
    sum += e;
  }
  EXPECT_NEAR(sum / kDraws, 42.0, 1.0);
}

TEST(RngTest, SplitProducesDecorrelatedStream) {
  Rng parent(10);
  Rng child = parent.Split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.Next() == child.Next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(SplitMix64Test, KnownFirstOutputs) {
  // Reference values for seed 0 (Vigna's splitmix64.c).
  SplitMix64 sm(0);
  EXPECT_EQ(sm.Next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(sm.Next(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(sm.Next(), 0x06c45d188009454fULL);
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~std::uint64_t{0});
  Rng rng(11);
  EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace dmap
