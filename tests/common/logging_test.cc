#include "common/logging.h"

#include <gtest/gtest.h>

namespace dmap {
namespace {

class LoggingTest : public testing::Test {
 protected:
  LoggingTest() : saved_(GetLogLevel()) {}
  ~LoggingTest() override { SetLogLevel(saved_); }
  LogLevel saved_;
};

TEST_F(LoggingTest, LevelRoundTrips) {
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
}

TEST_F(LoggingTest, SuppressedMessagesDoNotEvaluate) {
  // The macro must short-circuit: streamed expressions below the level are
  // never evaluated (they'd be wasted work on the hot path).
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  const auto count = [&evaluations] {
    ++evaluations;
    return 42;
  };
  DMAP_LOG(kDebug) << "never " << count();
  DMAP_LOG(kInfo) << "never " << count();
  EXPECT_EQ(evaluations, 0);
  DMAP_LOG(kError) << "emitted " << count();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LoggingTest, EmittingAtEveryLevelIsSafe) {
  SetLogLevel(LogLevel::kDebug);
  DMAP_LOG(kDebug) << "debug " << 1;
  DMAP_LOG(kInfo) << "info " << 2.5;
  DMAP_LOG(kWarning) << "warning " << "text";
  DMAP_LOG(kError) << "error " << std::string("string");
  // No assertions beyond not crashing; output goes to stderr.
}

TEST_F(LoggingTest, MacroComposesWithIfElse) {
  // The dangling-else shape must behave: this is the classic macro trap.
  SetLogLevel(LogLevel::kError);
  bool took_else = false;
  if (false)
    DMAP_LOG(kError) << "not reached";
  else
    took_else = true;
  EXPECT_TRUE(took_else);
}

}  // namespace
}  // namespace dmap
