#include "sim/replication.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "sim/experiments.h"

namespace dmap {
namespace {

TEST(ReplicationTest, SingleRunHasNoCi) {
  const auto r = RunReplicated(1, 7, [](std::uint64_t seed) {
    return double(seed);
  });
  EXPECT_EQ(r.values.size(), 1u);
  EXPECT_DOUBLE_EQ(r.mean, 7.0);
  EXPECT_DOUBLE_EQ(r.stddev, 0.0);
  EXPECT_DOUBLE_EQ(r.ci95_half, 0.0);
}

TEST(ReplicationTest, KnownValuesAggregateCorrectly) {
  // seeds 0..4 -> values 0, 1, 2, 3, 4: mean 2, sample stddev sqrt(2.5).
  const auto r = RunReplicated(5, 0, [](std::uint64_t seed) {
    return double(seed);
  });
  EXPECT_DOUBLE_EQ(r.mean, 2.0);
  EXPECT_NEAR(r.stddev, std::sqrt(2.5), 1e-12);
  EXPECT_NEAR(r.ci95_half, 1.96 * std::sqrt(2.5) / std::sqrt(5.0), 1e-12);
  EXPECT_LT(r.ci_low(), r.mean);
  EXPECT_GT(r.ci_high(), r.mean);
}

TEST(ReplicationTest, SeedsAreDistinctAndOrdered) {
  std::vector<std::uint64_t> seen;
  RunReplicated(4, 100, [&seen](std::uint64_t seed) {
    seen.push_back(seed);
    return 0.0;
  });
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{100, 101, 102, 103}));
}

TEST(ReplicationTest, Validation) {
  EXPECT_THROW(RunReplicated(0, 1, [](std::uint64_t) { return 0.0; }),
               std::invalid_argument);
}

TEST(ReplicationTest, CiCoversTrueMeanOfNoisyEstimator) {
  // A seeded noisy estimator of 10.0: the CI from 30 runs should cover it.
  const auto r = RunReplicated(30, 42, [](std::uint64_t seed) {
    Rng rng(seed);
    return 10.0 + rng.NextGaussian();
  });
  EXPECT_GT(10.0, r.ci_low());
  EXPECT_LT(10.0, r.ci_high());
  EXPECT_NEAR(r.stddev, 1.0, 0.4);
}

TEST(ReplicationTest, EndToEndAcrossEnvironmentSeeds) {
  // The real use: replicate a small response-time experiment across
  // topologies. Means should be stable (CI well under the mean).
  const auto r = RunReplicated(3, 1, [](std::uint64_t seed) {
    SimEnvironment env = BuildEnvironment(
        EnvironmentParams::Scaled(300, seed));
    ResponseTimeConfig config;
    config.k = 3;
    config.workload.num_guids = 300;
    config.workload.num_lookups = 2000;
    config.workload.seed = seed;
    return RunResponseTimeExperiment(env, config).mean();
  });
  EXPECT_GT(r.mean, 10.0);
  EXPECT_LT(r.ci95_half, r.mean);  // sane spread across topologies
}

}  // namespace
}  // namespace dmap
