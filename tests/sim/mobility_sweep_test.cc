#include "sim/mobility_sweep.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "obs/export.h"
#include "obs/metrics_registry.h"

namespace dmap {
namespace {

class MobilitySweepTest : public testing::Test {
 protected:
  MobilitySweepTest()
      : env_(BuildEnvironment(EnvironmentParams::Scaled(300, 81))) {}

  MobilityConfig Config() const {
    MobilityConfig c;
    c.mobility.num_hosts = 25;
    c.mobility.guids_per_host = 6;
    c.mobility.handoff_rate_hz = 1.0;
    c.mobility.horizon_s = 3.0;
    c.mobility.seed = 11;
    c.k = 3;
    c.batch_sizes = {1, 6};
    c.cache.capacity = 4096;
    c.cache.shards = 4;
    c.ttl_sweep_ms = {100.0, 5000.0};
    c.lookup_rate_hz = 500.0;
    return c;
  }

  SimEnvironment env_;
};

TEST_F(MobilitySweepTest, ResultIsIdenticalForEveryThreadCount) {
  MobilityConfig one = Config();
  one.threads = 1;
  MobilityConfig four = Config();
  four.threads = 4;
  const MobilityResult a = RunMobilitySweep(env_, one);
  const MobilityResult b = RunMobilitySweep(env_, four);

  ASSERT_EQ(a.batch_points.size(), b.batch_points.size());
  for (std::size_t i = 0; i < a.batch_points.size(); ++i) {
    const MobilityBatchPoint& x = a.batch_points[i];
    const MobilityBatchPoint& y = b.batch_points[i];
    EXPECT_EQ(x.batch_size, y.batch_size);
    EXPECT_EQ(x.handoffs, y.handoffs);
    EXPECT_EQ(x.guid_updates, y.guid_updates);
    EXPECT_EQ(x.waves, y.waves);
    EXPECT_EQ(x.batch_messages, y.batch_messages);
    EXPECT_EQ(x.singleton_messages, y.singleton_messages);
    EXPECT_DOUBLE_EQ(x.reduction, y.reduction);
    EXPECT_DOUBLE_EQ(x.mean_wave_latency_ms, y.mean_wave_latency_ms);
  }
  ASSERT_EQ(a.ttl_points.size(), b.ttl_points.size());
  for (std::size_t i = 0; i < a.ttl_points.size(); ++i) {
    const MobilityTtlPoint& x = a.ttl_points[i];
    const MobilityTtlPoint& y = b.ttl_points[i];
    EXPECT_DOUBLE_EQ(x.ttl_ms, y.ttl_ms);
    EXPECT_EQ(x.lookups, y.lookups);
    EXPECT_EQ(x.found, y.found);
    EXPECT_EQ(x.cache_hits, y.cache_hits);
    EXPECT_EQ(x.cache_misses, y.cache_misses);
    EXPECT_EQ(x.stale_served, y.stale_served);
    EXPECT_EQ(x.evictions, y.evictions);
    EXPECT_EQ(x.invalidations, y.invalidations);
    EXPECT_DOUBLE_EQ(x.hit_rate, y.hit_rate);
    EXPECT_DOUBLE_EQ(x.stale_fraction, y.stale_fraction);
    EXPECT_DOUBLE_EQ(x.mean_latency_ms, y.mean_latency_ms);
  }
}

TEST_F(MobilitySweepTest, BatchPanelInvariants) {
  const MobilityResult result = RunMobilitySweep(env_, Config());
  ASSERT_EQ(result.batch_points.size(), 2u);
  const MobilityBatchPoint& singleton = result.batch_points[0];
  const MobilityBatchPoint& batched = result.batch_points[1];
  // Same schedule replayed: handoff and update counts are batch-invariant.
  EXPECT_EQ(singleton.handoffs, batched.handoffs);
  EXPECT_EQ(singleton.guid_updates, batched.guid_updates);
  EXPECT_GT(singleton.handoffs, 0u);
  // Batch 1 degenerates to one wave per update.
  EXPECT_EQ(singleton.waves, singleton.guid_updates);
  EXPECT_LT(batched.waves, singleton.waves);
  // Coalescing never sends more messages than the singleton baseline.
  EXPECT_LE(batched.batch_messages, batched.singleton_messages);
  EXPECT_EQ(singleton.singleton_messages, batched.singleton_messages);
  EXPECT_GE(batched.reduction, singleton.reduction);
}

TEST_F(MobilitySweepTest, LongerTtlNeverLowersHitRate) {
  const MobilityResult result = RunMobilitySweep(env_, Config());
  ASSERT_EQ(result.ttl_points.size(), 2u);
  const MobilityTtlPoint& brief = result.ttl_points[0];
  const MobilityTtlPoint& lasting = result.ttl_points[1];
  EXPECT_EQ(brief.lookups, lasting.lookups);
  EXPECT_GT(brief.lookups, 0u);
  EXPECT_GE(lasting.hit_rate, brief.hit_rate);
  // Staleness can only appear on served hits.
  EXPECT_LE(brief.stale_served, brief.cache_hits);
  EXPECT_LE(lasting.stale_served, lasting.cache_hits);
}

TEST_F(MobilitySweepTest, MetricsMergeIsThreadCountIndependent) {
  MetricsRegistry one_reg, four_reg;
  MobilityConfig one = Config();
  one.threads = 1;
  one.metrics = &one_reg;
  MobilityConfig four = Config();
  four.threads = 4;
  four.metrics = &four_reg;
  (void)RunMobilitySweep(env_, one);
  (void)RunMobilitySweep(env_, four);
  // The stable export is what CI byte-diffs across thread counts.
  EXPECT_EQ(MetricsSummaryJson(one_reg.Snapshot()),
            MetricsSummaryJson(four_reg.Snapshot()));
}

TEST_F(MobilitySweepTest, InvalidConfigThrows) {
  MobilityConfig bad = Config();
  bad.batch_sizes = {0};
  EXPECT_THROW(RunMobilitySweep(env_, bad), std::invalid_argument);

  MobilityConfig no_cache = Config();
  no_cache.cache.capacity = 0;  // TTL sweep requested but cache disabled
  EXPECT_THROW(RunMobilitySweep(env_, no_cache), std::invalid_argument);

  MobilityConfig no_rate = Config();
  no_rate.lookup_rate_hz = 0.0;
  EXPECT_THROW(RunMobilitySweep(env_, no_rate), std::invalid_argument);
}

}  // namespace
}  // namespace dmap
