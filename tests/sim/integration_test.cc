// End-to-end integration: topology + prefixes + DMap + churn repair + mobile
// hosts, exercised together the way the examples and benches compose them.
#include <gtest/gtest.h>

#include "bgp/churn.h"
#include "core/dmap_service.h"
#include "sim/environment.h"
#include "sim/experiments.h"
#include "workload/workload.h"

namespace dmap {
namespace {

TEST(IntegrationTest, FullPipelineSmall) {
  SimEnvironment env = BuildEnvironment(EnvironmentParams::Scaled(350, 41));
  DMapOptions options;
  options.k = 5;
  options.measure_update_latency = false;
  DMapService service(env.graph, env.table, options);

  WorkloadParams params;
  params.num_guids = 300;
  params.seed = 2;
  WorkloadGenerator workload(env.graph, params);
  for (const InsertOp& op : workload.Inserts()) {
    (void)service.Insert(op.guid, op.na);
  }
  EXPECT_GT(service.total_stored_entries(), 300u * 5u / 2u);

  // Every registered GUID resolves from three different vantage points.
  for (std::uint64_t i = 0; i < params.num_guids; i += 17) {
    for (const AsId querier : {5u, 170u, 349u}) {
      const LookupResult r = service.Lookup(workload.GuidAt(i), querier);
      ASSERT_TRUE(r.found) << "guid " << i << " from " << querier;
    }
  }
}

TEST(IntegrationTest, MobileHostRemainsReachableThroughMoves) {
  // The paper's motivating scenario: a voice call follows a device moving
  // across attachment points (Section I).
  SimEnvironment env = BuildEnvironment(EnvironmentParams::Scaled(350, 42));
  DMapOptions options;
  options.k = 5;
  DMapService service(env.graph, env.table, options);

  const Guid phone = Guid::FromSequence(7);
  (void)service.Insert(phone, NetworkAddress{10, 1});
  const AsId correspondent = 200;

  std::vector<AsId> path{30, 60, 90, 120, 150};
  for (std::size_t i = 0; i < path.size(); ++i) {
    const UpdateResult up =
        service.Update(phone, NetworkAddress{path[i], std::uint32_t(i + 2)});
    EXPECT_GT(up.latency_ms, 0.0);
    const LookupResult r = service.Lookup(phone, correspondent);
    ASSERT_TRUE(r.found);
    EXPECT_TRUE(r.nas.AttachedTo(path[i]))
        << "stale mapping after move " << i;
    EXPECT_EQ(r.nas.size(), 1);
  }
}

TEST(IntegrationTest, ChurnRepairProtocolRestoresPlacement) {
  // Section III-D-1 end-to-end: apply churn to the authoritative table,
  // run the repair (Rehome) over affected GUIDs, and verify stale-view-free
  // lookups work first-try again.
  SimEnvironment env = BuildEnvironment(EnvironmentParams::Scaled(300, 43));
  DMapOptions options;
  options.k = 3;
  options.local_replica = false;
  options.measure_update_latency = false;

  // The service reads the table by reference, so churning env.table is
  // visible to the resolver immediately.
  DMapService service(env.graph, env.table, options);
  WorkloadParams params;
  params.num_guids = 400;
  params.seed = 3;
  WorkloadGenerator workload(env.graph, params);
  for (const InsertOp& op : workload.Inserts()) {
    (void)service.Insert(op.guid, op.na);
  }

  Rng rng(4);
  ChurnParams churn;
  churn.withdraw_fraction = 0.05;
  churn.announce_fraction = 0.05;
  churn.num_ases = env.graph.num_nodes();
  ApplyChurn(env.table, SampleChurn(env.table, churn, rng));

  // After churn, some lookups need extra attempts; after repair, none do.
  int moved = 0;
  for (std::uint64_t i = 0; i < params.num_guids; ++i) {
    moved += service.Rehome(workload.GuidAt(i));
  }
  EXPECT_GT(moved, 0) << "churn at 10% must displace some replicas";

  for (std::uint64_t i = 0; i < params.num_guids; i += 7) {
    const LookupResult r = service.Lookup(workload.GuidAt(i), 123);
    ASSERT_TRUE(r.found);
    EXPECT_EQ(r.attempts, 1) << "guid " << i << " still misplaced";
  }
}

TEST(IntegrationTest, DeterministicEndToEnd) {
  // Two fully independent stacks built from the same seeds produce
  // identical measurements — the reproducibility contract of DESIGN.md.
  const auto run = [] {
    SimEnvironment env =
        BuildEnvironment(EnvironmentParams::Scaled(300, 44));
    ResponseTimeConfig config;
    config.k = 3;
    config.workload.num_guids = 200;
    config.workload.num_lookups = 1000;
    config.workload.seed = 9;
    const SampleSet samples = RunResponseTimeExperiment(env, config);
    return std::make_tuple(samples.count(), samples.mean(),
                           samples.Quantile(0.95));
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(std::get<0>(a), std::get<0>(b));
  EXPECT_DOUBLE_EQ(std::get<1>(a), std::get<1>(b));
  EXPECT_DOUBLE_EQ(std::get<2>(a), std::get<2>(b));
}

TEST(IntegrationTest, StorageAccountingConsistent) {
  SimEnvironment env = BuildEnvironment(EnvironmentParams::Scaled(300, 45));
  DMapOptions options;
  options.k = 4;
  options.measure_update_latency = false;
  DMapService service(env.graph, env.table, options);

  WorkloadParams params;
  params.num_guids = 250;
  params.seed = 6;
  WorkloadGenerator workload(env.graph, params);
  for (const InsertOp& op : workload.Inserts()) {
    (void)service.Insert(op.guid, op.na);
  }

  // total_stored_entries must equal the sum over all per-AS stores.
  std::uint64_t sum = 0;
  for (const std::size_t size : service.StoreSizes()) sum += size;
  EXPECT_EQ(sum, service.total_stored_entries());
  // Between K and K+1 entries per GUID (local replica may coincide with a
  // global one).
  EXPECT_GE(sum, params.num_guids * 4);
  EXPECT_LE(sum, params.num_guids * 5);

  // Deregistering everything empties every store.
  for (std::uint64_t i = 0; i < params.num_guids; ++i) {
    EXPECT_TRUE(service.Deregister(workload.GuidAt(i)));
  }
  EXPECT_EQ(service.total_stored_entries(), 0u);
}

}  // namespace
}  // namespace dmap
