#include "sim/event_driven.h"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "fault/failure_view.h"
#include "sim/environment.h"
#include "workload/workload.h"

namespace dmap {
namespace {

class EventDrivenTest : public testing::Test {
 protected:
  EventDrivenTest()
      : env_(BuildEnvironment(EnvironmentParams::Scaled(300, 17))) {}

  DMapOptions Options(int k = 3) {
    DMapOptions o;
    o.k = k;
    o.measure_update_latency = false;
    return o;
  }

  SimEnvironment env_;
};

TEST_F(EventDrivenTest, CompletesWithCorrectResult) {
  DMapService service(env_.graph, env_.table, Options());
  const Guid g = Guid::FromSequence(1);
  (void)service.Insert(g, NetworkAddress{10, 1});

  Simulator sim;
  EventDrivenLookup executor(sim, service);
  std::optional<LookupResult> result;
  executor.LookupAsync(g, 200, SimTime::Millis(5),
                       [&](const LookupResult& r) { result = r; });
  sim.Run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->found);
  EXPECT_TRUE(result->nas.AttachedTo(10));
}

TEST_F(EventDrivenTest, AgreesWithClosedFormOnSuccessfulLookups) {
  // The core cross-validation: the event-driven exchange must reproduce
  // the closed-form latency exactly, across many GUIDs and queriers.
  DMapService service(env_.graph, env_.table, Options());
  WorkloadParams params;
  params.num_guids = 200;
  params.seed = 3;
  WorkloadGenerator workload(env_.graph, params);
  for (const InsertOp& op : workload.Inserts()) {
    (void)service.Insert(op.guid, op.na);
  }

  Simulator sim;
  EventDrivenLookup executor(sim, service);
  int checked = 0;
  for (const LookupOp& op : workload.Lookups(300)) {
    const LookupResult expected = service.Lookup(op.guid, op.source);
    std::optional<LookupResult> got;
    executor.LookupAsync(op.guid, op.source, SimTime::Zero(),
                         [&](const LookupResult& r) { got = r; });
    sim.Run();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->found, expected.found);
    EXPECT_NEAR(got->latency_ms, expected.latency_ms, 1e-9)
        << "guid lookup from AS " << op.source;
    EXPECT_EQ(got->served_locally, expected.served_locally);
    if (got->found) {
      EXPECT_EQ(got->nas, expected.nas);
    }
    ++checked;
  }
  EXPECT_EQ(checked, 300);
}

TEST_F(EventDrivenTest, AgreesWithClosedFormUnderFailures) {
  DMapOptions options = Options();
  options.local_replica = false;
  options.failure_timeout_ms = 321.0;
  DMapService service(env_.graph, env_.table, options);
  const Guid g = Guid::FromSequence(2);
  (void)service.Insert(g, NetworkAddress{10, 1});

  const auto plan = service.ProbePlan(g, 99);
  service.SetFailedAses({plan[0].first});

  const LookupResult expected = service.Lookup(g, 99);
  Simulator sim;
  EventDrivenLookup executor(sim, service);
  std::optional<LookupResult> got;
  executor.LookupAsync(g, 99, SimTime::Zero(),
                       [&](const LookupResult& r) { got = r; });
  sim.Run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->found, expected.found);
  EXPECT_NEAR(got->latency_ms, expected.latency_ms, 1e-9);
  EXPECT_EQ(got->attempts, expected.attempts);
}

TEST_F(EventDrivenTest, SharedFailureViewKeepsPathsAgreeingOnTimings) {
  // Satellite property: one FailureView configured once must drive the
  // closed-form and event-driven paths to identical failure timings — and
  // round-trip through the legacy SetFailedAses API without divergence.
  DMapOptions options = Options();
  options.local_replica = false;
  options.failure_timeout_ms = 250.0;
  options.probe_retries = 2;
  options.retry_backoff = 2.5;
  DMapService service(env_.graph, env_.table, options);
  DMapService legacy(env_.graph, env_.table, options);

  WorkloadParams params;
  params.num_guids = 100;
  params.seed = 6;
  WorkloadGenerator workload(env_.graph, params);
  for (const InsertOp& op : workload.Inserts()) {
    (void)service.Insert(op.guid, op.na);
    (void)legacy.Insert(op.guid, op.na);
  }

  FailureView view;
  std::vector<AsId> failed;
  for (AsId as = 2; as < env_.graph.num_nodes(); as += 7) {
    failed.push_back(as);
  }
  view.SetFailed(failed);
  service.SetFailureView(view);
  // The legacy path is fed the view's own snapshot: both must agree.
  legacy.SetFailedAses(view.FailedAt(SimTime::Zero()));

  Simulator sim;
  EventDrivenLookup executor(sim, service);
  int with_failures = 0;
  for (const LookupOp& op : workload.Lookups(200)) {
    const LookupResult expected = service.Lookup(op.guid, op.source);
    const LookupResult via_legacy = legacy.Lookup(op.guid, op.source);
    EXPECT_EQ(via_legacy.found, expected.found);
    EXPECT_NEAR(via_legacy.latency_ms, expected.latency_ms, 1e-9);
    EXPECT_EQ(via_legacy.attempts, expected.attempts);

    std::optional<LookupResult> got;
    executor.LookupAsync(op.guid, op.source, SimTime::Zero(),
                         [&](const LookupResult& r) { got = r; });
    sim.Run();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->found, expected.found);
    EXPECT_NEAR(got->latency_ms, expected.latency_ms, 1e-9)
        << "guid lookup from AS " << op.source;
    EXPECT_EQ(got->attempts, expected.attempts);
    if (expected.attempts > 1) ++with_failures;
  }
  // The schedule must actually have been exercised, not dodged.
  EXPECT_GT(with_failures, 0);
}

TEST_F(EventDrivenTest, TimeVaryingWindowsTakeEffectAtProbeTime) {
  // The event-driven path consults the scheduled view: a replica inside an
  // outage window is probed around, one past its recovery answers again.
  DMapOptions options = Options();
  options.local_replica = false;
  DMapService service(env_.graph, env_.table, options);
  const Guid g = Guid::FromSequence(42);
  (void)service.Insert(g, NetworkAddress{10, 1});
  const auto plan = service.ProbePlan(g, 99);

  FailureView view;
  view.AddWindow(plan[0].first, SimTime::Zero(), SimTime::Millis(1000.0));
  service.SetFailureView(view);
  ASSERT_TRUE(view.TimeVarying());

  Simulator sim;
  EventDrivenLookup executor(sim, service);
  // Inside the window: the first replica times out.
  std::optional<LookupResult> during;
  executor.LookupAsync(g, 99, SimTime::Zero(),
                       [&](const LookupResult& r) { during = r; });
  sim.Run();
  ASSERT_TRUE(during.has_value());
  EXPECT_TRUE(during->found);
  EXPECT_EQ(during->attempts, 2);

  // Past the window: the replica answers first-try again.
  std::optional<LookupResult> after;
  executor.LookupAsync(g, 99, SimTime::Millis(2000.0),
                       [&](const LookupResult& r) { after = r; });
  sim.Run();
  ASSERT_TRUE(after.has_value());
  EXPECT_TRUE(after->found);
  EXPECT_EQ(after->attempts, 1);
}

TEST_F(EventDrivenTest, MissReportsAccumulatedCost) {
  DMapOptions options = Options();
  options.local_replica = false;
  DMapService service(env_.graph, env_.table, options);
  const Guid unknown = Guid::FromSequence(999);

  const LookupResult expected = service.Lookup(unknown, 50);
  ASSERT_FALSE(expected.found);

  Simulator sim;
  EventDrivenLookup executor(sim, service);
  std::optional<LookupResult> got;
  executor.LookupAsync(unknown, 50, SimTime::Zero(),
                       [&](const LookupResult& r) { got = r; });
  sim.Run();
  ASSERT_TRUE(got.has_value());
  EXPECT_FALSE(got->found);
  EXPECT_NEAR(got->latency_ms, expected.latency_ms, 1e-9);
  EXPECT_EQ(got->attempts, options.k);
}

TEST_F(EventDrivenTest, ConcurrentLookupsDoNotInterfere) {
  DMapService service(env_.graph, env_.table, Options());
  WorkloadParams params;
  params.num_guids = 50;
  params.seed = 4;
  WorkloadGenerator workload(env_.graph, params);
  for (const InsertOp& op : workload.Inserts()) {
    (void)service.Insert(op.guid, op.na);
  }

  // Launch 100 lookups at staggered starts in a single simulation run.
  Simulator sim;
  EventDrivenLookup executor(sim, service);
  std::vector<std::pair<LookupOp, std::optional<LookupResult>>> flights;
  flights.reserve(100);
  for (const LookupOp& op : workload.Lookups(100)) {
    flights.emplace_back(op, std::nullopt);
  }
  for (std::size_t i = 0; i < flights.size(); ++i) {
    executor.LookupAsync(
        flights[i].first.guid, flights[i].first.source,
        SimTime::Millis(double(i) * 0.37),
        [&flights, i](const LookupResult& r) { flights[i].second = r; });
  }
  sim.Run();
  for (auto& [op, result] : flights) {
    ASSERT_TRUE(result.has_value());
    const LookupResult expected = service.Lookup(op.guid, op.source);
    EXPECT_NEAR(result->latency_ms, expected.latency_ms, 1e-9);
  }
}

TEST_F(EventDrivenTest, UpdateCompletesAtMaxReplicaRtt) {
  DMapOptions options = Options();
  options.measure_update_latency = true;
  options.write_quorum = 1;  // legacy mode: done when every replica acks
  DMapService service(env_.graph, env_.table, options);
  const Guid g = Guid::FromSequence(10);
  (void)service.Insert(g, NetworkAddress{10, 1});

  Simulator sim;
  EventDrivenLookup executor(sim, service);
  std::optional<UpdateResult> got;
  executor.UpdateAsync(g, NetworkAddress{20, 2}, SimTime::Millis(3),
                       [&](const UpdateResult& r) { got = r; });
  sim.Run();
  ASSERT_TRUE(got.has_value());
  // Completion time = start (3ms) + max replica RTT from the new AS.
  double max_rtt = 0;
  for (const AsId host : got->replicas) {
    max_rtt = std::max(max_rtt, service.oracle().RttMs(20, host));
  }
  EXPECT_NEAR(got->latency_ms, max_rtt, 1e-9);
  EXPECT_NEAR(sim.Now().millis(), 3.0 + max_rtt, 1e-9);
  // The mapping did move.
  EXPECT_TRUE(service.Lookup(g, 50).nas.AttachedTo(20));
}

TEST_F(EventDrivenTest, UpdateCompletesAtMajorityAckByDefault) {
  DMapOptions options = Options();
  options.measure_update_latency = true;
  options.local_replica = false;  // acks come from the K globals alone
  DMapService service(env_.graph, env_.table, options);
  const Guid g = Guid::FromSequence(10);
  (void)service.Insert(g, NetworkAddress{10, 1});

  Simulator sim;
  EventDrivenLookup executor(sim, service);
  std::optional<UpdateResult> got;
  executor.UpdateAsync(g, NetworkAddress{20, 2}, SimTime::Zero(),
                       [&](const UpdateResult& r) { got = r; });
  sim.Run();
  ASSERT_TRUE(got.has_value());
  std::vector<double> acks;
  for (const AsId host : got->replicas) {
    acks.push_back(service.oracle().RttMs(20, host));
  }
  std::sort(acks.begin(), acks.end());
  const int w = ResolveQuorum(0, int(acks.size()));
  ASSERT_GE(w, 2);
  // The update is done at the W-th fastest ack, strictly before the
  // slowest replica replies.
  EXPECT_NEAR(got->latency_ms, acks[std::size_t(w - 1)], 1e-9);
  EXPECT_NEAR(sim.Now().millis(), acks[std::size_t(w - 1)], 1e-9);
  EXPECT_LE(got->latency_ms, acks.back());
}

TEST_F(EventDrivenTest, UpdateComputesLatencyWhenServiceSkipsIt) {
  DMapService service(env_.graph, env_.table, Options());  // measurement off
  const Guid g = Guid::FromSequence(11);
  (void)service.Insert(g, NetworkAddress{10, 1});

  Simulator sim;
  EventDrivenLookup executor(sim, service);
  std::optional<UpdateResult> got;
  executor.UpdateAsync(g, NetworkAddress{30, 2}, SimTime::Zero(),
                       [&](const UpdateResult& r) { got = r; });
  sim.Run();
  ASSERT_TRUE(got.has_value());
  EXPECT_GT(got->latency_ms, 0.0);
  EXPECT_NEAR(sim.Now().millis(), got->latency_ms, 1e-9);
}

ServingConfig TierConfig() {
  ServingConfig config;
  config.enabled = true;
  config.model = ServiceModel::kDeterministic;
  config.service_rate_per_s = 2000.0;  // 0.5 ms per request
  config.bucket_rate_per_s = 0.0;      // bucket off
  return config;
}

// With an idle tier installed, a one-probe lookup costs exactly the
// closed-form network latency plus one deterministic service time.
TEST_F(EventDrivenTest, ServingTierAddsServiceTimeWhenIdle) {
  DMapOptions options = Options();
  options.local_replica = false;
  DMapService service(env_.graph, env_.table, options);
  const Guid g = Guid::FromSequence(21);
  (void)service.Insert(g, NetworkAddress{10, 1});
  const LookupResult expected = service.Lookup(g, 77);
  ASSERT_TRUE(expected.found);
  ASSERT_EQ(expected.attempts, 1);

  ServingTier tier(TierConfig());
  Simulator sim;
  EventDrivenLookup executor(sim, service);
  executor.SetServingTier(&tier);
  std::optional<LookupResult> got;
  executor.LookupAsync(g, 77, SimTime::Zero(),
                       [&](const LookupResult& r) { got = r; });
  sim.Run();
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->found);
  EXPECT_EQ(got->admission, AdmissionOutcome::kServed);
  EXPECT_DOUBLE_EQ(got->queue_delay_ms, 0.0);
  EXPECT_NEAR(got->latency_ms, expected.latency_ms + 0.5, 1e-9);
}

// Two simultaneous lookups hitting the same c=1 replica: one is served at
// once, the other reports a queue wait of exactly one service time.
TEST_F(EventDrivenTest, ServingTierQueuesConcurrentArrivals) {
  DMapOptions options = Options();
  options.local_replica = false;
  DMapService service(env_.graph, env_.table, options);
  const Guid g = Guid::FromSequence(22);
  (void)service.Insert(g, NetworkAddress{10, 1});

  ServingTier tier(TierConfig());
  Simulator sim;
  EventDrivenLookup executor(sim, service);
  executor.SetServingTier(&tier);
  std::vector<LookupResult> got;
  for (int i = 0; i < 2; ++i) {
    executor.LookupAsync(g, 77, SimTime::Zero(),
                         [&](const LookupResult& r) { got.push_back(r); });
  }
  sim.Run();
  ASSERT_EQ(got.size(), 2u);
  // Completion order = service order: first served, then queued.
  EXPECT_EQ(got[0].admission, AdmissionOutcome::kServed);
  EXPECT_EQ(got[1].admission, AdmissionOutcome::kQueued);
  EXPECT_DOUBLE_EQ(got[0].queue_delay_ms, 0.0);
  EXPECT_DOUBLE_EQ(got[1].queue_delay_ms, 0.5);
  EXPECT_NEAR(got[1].latency_ms, got[0].latency_ms + 0.5, 1e-9);
  EXPECT_EQ(tier.served(), 1u);
  EXPECT_EQ(tier.queued(), 1u);
}

// A shed is silent: the client's timeout fires and the lookup falls
// through to the next replica, which answers — overload costs a timeout
// but not the result.
TEST_F(EventDrivenTest, ShedProbeFallsThroughToNextReplica) {
  DMapOptions options = Options();
  options.local_replica = false;
  options.probe_retries = 0;
  DMapService service(env_.graph, env_.table, options);
  const Guid g = Guid::FromSequence(23);
  (void)service.Insert(g, NetworkAddress{10, 1});

  ServingConfig config = TierConfig();
  config.bucket_rate_per_s = 1e-6;  // effectively no refill (0 = unlimited)
  config.bucket_burst = 1.0;
  ServingTier tier(config);
  Simulator sim;
  EventDrivenLookup executor(sim, service);
  executor.SetServingTier(&tier);

  // The first lookup drains replica 1's only token; the second, same plan,
  // is shed there and must fall through.
  std::optional<LookupResult> first, second;
  executor.LookupAsync(g, 77, SimTime::Zero(),
                       [&](const LookupResult& r) { first = r; });
  executor.LookupAsync(g, 77, SimTime::Millis(500.0),
                       [&](const LookupResult& r) { second = r; });
  sim.Run();
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_TRUE(first->found);
  EXPECT_EQ(first->attempts, 1);
  EXPECT_TRUE(second->found);
  // Replicas can collide on an AS (K hashes, one owner), so the lookup may
  // shed more than once before meeting a fresh bucket — but every shed
  // costs exactly one fall-through probe.
  EXPECT_GE(second->attempts, 2);
  EXPECT_EQ(second->attempts, 1 + int(tier.shed_tokens()));
  // Resolved by a later replica's admission, so the terminal outcome is
  // served — but the detour cost at least one probe timeout on top.
  EXPECT_EQ(second->admission, AdmissionOutcome::kServed);
  EXPECT_GT(second->latency_ms, first->latency_ms);
}

// When every replica sheds, the lookup exhausts its plan and reports the
// overload: found = false with a terminal kShed admission.
TEST_F(EventDrivenTest, TotalShedReportsShedOutcome) {
  DMapOptions options = Options(/*k=*/1);
  options.local_replica = false;
  options.probe_retries = 0;
  DMapService service(env_.graph, env_.table, options);
  const Guid g = Guid::FromSequence(24);
  (void)service.Insert(g, NetworkAddress{10, 1});

  ServingConfig config = TierConfig();
  config.bucket_rate_per_s = 1e-6;
  config.bucket_burst = 1.0;
  ServingTier tier(config);
  Simulator sim;
  EventDrivenLookup executor(sim, service);
  executor.SetServingTier(&tier);

  std::optional<LookupResult> first, second;
  executor.LookupAsync(g, 77, SimTime::Zero(),
                       [&](const LookupResult& r) { first = r; });
  executor.LookupAsync(g, 77, SimTime::Millis(500.0),
                       [&](const LookupResult& r) { second = r; });
  sim.Run();
  ASSERT_TRUE(first.has_value());
  EXPECT_TRUE(first->found);
  ASSERT_TRUE(second.has_value());
  EXPECT_FALSE(second->found);
  EXPECT_EQ(second->admission, AdmissionOutcome::kShed);
  EXPECT_EQ(second->attempts, 1);
  EXPECT_GT(second->latency_ms, 0.0);
}

TEST_F(EventDrivenTest, LocalWinsRaceWhenCloserEventCancelled) {
  DMapService service(env_.graph, env_.table, Options());
  const Guid g = Guid::FromSequence(5);
  (void)service.Insert(g, NetworkAddress{42, 1});

  Simulator sim;
  EventDrivenLookup executor(sim, service);
  std::optional<LookupResult> got;
  int callbacks = 0;
  executor.LookupAsync(g, 42, SimTime::Zero(), [&](const LookupResult& r) {
    got = r;
    ++callbacks;
  });
  sim.Run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(callbacks, 1);  // exactly one completion despite the race
  EXPECT_TRUE(got->served_locally);
  EXPECT_NEAR(got->latency_ms, 2.0 * env_.graph.IntraLatencyMs(42), 1e-9);
}

}  // namespace
}  // namespace dmap
