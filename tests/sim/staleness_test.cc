#include "sim/staleness.h"

#include <gtest/gtest.h>

namespace dmap {
namespace {

class StalenessTest : public testing::Test {
 protected:
  StalenessTest()
      : env_(BuildEnvironment(EnvironmentParams::Scaled(300, 71))) {}

  StalenessConfig SmallConfig() {
    StalenessConfig c;
    c.num_hosts = 100;
    c.duration_s = 120.0;
    c.k = 3;
    return c;
  }

  SimEnvironment env_;
};

TEST_F(StalenessTest, NoMobilityMeansNoStaleness) {
  StalenessConfig config = SmallConfig();
  config.mean_move_interval_s = 1e9;  // effectively never moves
  const StalenessReport r = RunStalenessExperiment(env_, config);
  EXPECT_GT(r.lookups, 1000u);
  EXPECT_EQ(r.moves, 0u);
  EXPECT_EQ(r.stale_first_answers, 0u);
  EXPECT_EQ(r.time_to_fresh_ms.count(), 0u);
}

TEST_F(StalenessTest, MobilityCreatesBoundedStaleness) {
  StalenessConfig config = SmallConfig();
  config.mean_move_interval_s = 20.0;  // aggressive mobility
  const StalenessReport r = RunStalenessExperiment(env_, config);
  EXPECT_GT(r.moves, 200u);
  EXPECT_GT(r.stale_first_answers, 0u);
  // Staleness window per move is ~one update RTT (~100 ms) out of a 20 s
  // inter-move gap, so the stale fraction should be well under 5%.
  EXPECT_LT(r.stale_fraction, 0.05);
}

TEST_F(StalenessTest, KeepCheckingConvergesQuickly) {
  StalenessConfig config = SmallConfig();
  config.mean_move_interval_s = 20.0;
  const StalenessReport r = RunStalenessExperiment(env_, config);
  if (r.time_to_fresh_ms.count() > 0) {
    // The stale window is one update latency; with 50 ms rechecks the
    // fresh binding arrives within a handful of retries.
    EXPECT_LT(r.rechecks.mean(), 10.0);
    EXPECT_LT(r.time_to_fresh_ms.Quantile(0.95), 1500.0);
    EXPECT_EQ(r.time_to_fresh_ms.count(),
              std::uint64_t(r.rechecks.count()));
  }
}

TEST_F(StalenessTest, FasterMobilityMeansMoreStaleness) {
  StalenessConfig slow = SmallConfig();
  slow.mean_move_interval_s = 120.0;
  StalenessConfig fast = SmallConfig();
  fast.mean_move_interval_s = 10.0;
  const StalenessReport r_slow = RunStalenessExperiment(env_, slow);
  const StalenessReport r_fast = RunStalenessExperiment(env_, fast);
  EXPECT_GT(r_fast.stale_fraction, r_slow.stale_fraction);
}

TEST_F(StalenessTest, DeterministicForSeed) {
  const StalenessConfig config = SmallConfig();
  const StalenessReport a = RunStalenessExperiment(env_, config);
  const StalenessReport b = RunStalenessExperiment(env_, config);
  EXPECT_EQ(a.lookups, b.lookups);
  EXPECT_EQ(a.moves, b.moves);
  EXPECT_EQ(a.stale_first_answers, b.stale_first_answers);
}

}  // namespace
}  // namespace dmap
