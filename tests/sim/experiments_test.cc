#include "sim/experiments.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/export.h"
#include "obs/metrics_registry.h"
#include "obs/probe_trace.h"

namespace dmap {
namespace {

class ExperimentsTest : public testing::Test {
 protected:
  ExperimentsTest()
      : env_(BuildEnvironment(EnvironmentParams::Scaled(400, 23))) {}

  ResponseTimeConfig SmallConfig(int k) {
    ResponseTimeConfig c;
    c.k = k;
    c.workload.num_guids = 500;
    c.workload.num_lookups = 3000;
    c.workload.seed = 5;
    return c;
  }

  SimEnvironment env_;
};

TEST_F(ExperimentsTest, ResponseTimeSamplesEveryLookup) {
  const SampleSet samples = RunResponseTimeExperiment(env_, SmallConfig(3));
  EXPECT_EQ(samples.count(), 3000u);
  EXPECT_GT(samples.min(), 0.0);
}

TEST_F(ExperimentsTest, PathOracleBackendsProduceIdenticalSamples) {
  // --path-oracle=lru|hub is a speed knob, not a modelling knob: the sample
  // sequences must match bit-for-bit (grid-quantized latencies make hub
  // merges reproduce Dijkstra's float sums exactly).
  ResponseTimeConfig lru = SmallConfig(3);
  lru.path_oracle = PathOracleBackend::kLru;
  ResponseTimeConfig hub = SmallConfig(3);
  hub.path_oracle = PathOracleBackend::kHub;
  const SampleSet a = RunResponseTimeExperiment(env_, lru);
  const SampleSet b = RunResponseTimeExperiment(env_, hub);
  EXPECT_EQ(a.samples(), b.samples());

  ChurnExperimentConfig churn_lru, churn_hub;
  churn_lru.base = lru;
  churn_hub.base = hub;
  churn_lru.churn_fraction = churn_hub.churn_fraction = 0.10;
  const SampleSet ca = RunChurnExperiment(env_, churn_lru);
  const SampleSet cb = RunChurnExperiment(env_, churn_hub);
  EXPECT_EQ(ca.samples(), cb.samples());
}

TEST_F(ExperimentsTest, MoreReplicasReduceTailLatency) {
  // Figure 4's headline: the K = 5 CDF dominates K = 1.
  const SampleSet k1 = RunResponseTimeExperiment(env_, SmallConfig(1));
  const SampleSet k5 = RunResponseTimeExperiment(env_, SmallConfig(5));
  EXPECT_LT(k5.Quantile(0.95), k1.Quantile(0.95));
  EXPECT_LT(k5.mean(), k1.mean());
  EXPECT_LT(k5.Quantile(0.5), k1.Quantile(0.5));
}

TEST_F(ExperimentsTest, ChurnZeroMatchesBaseline) {
  ChurnExperimentConfig config;
  config.base = SmallConfig(5);
  config.churn_fraction = 0.0;
  const SampleSet churned = RunChurnExperiment(env_, config);
  const SampleSet baseline = RunResponseTimeExperiment(env_, config.base);
  ASSERT_EQ(churned.count(), baseline.count());
  EXPECT_NEAR(churned.mean(), baseline.mean(), 1e-9);
}

TEST_F(ExperimentsTest, ChurnInflatesTail) {
  // Figure 5: 5-10% churn grows the 95th percentile while the median stays
  // nearly unchanged.
  ChurnExperimentConfig config;
  config.base = SmallConfig(5);
  config.churn_fraction = 0.10;
  const SampleSet churned = RunChurnExperiment(env_, config);
  const SampleSet baseline = RunResponseTimeExperiment(env_, config.base);
  EXPECT_GT(churned.Quantile(0.95), baseline.Quantile(0.95));
  EXPECT_NEAR(churned.Quantile(0.5), baseline.Quantile(0.5),
              baseline.Quantile(0.5) * 0.35);
}

TEST_F(ExperimentsTest, LoadBalanceNlrCentersAroundOne) {
  LoadBalanceConfig config;
  config.num_guids = 50'000;
  const LoadBalanceResult result = RunLoadBalanceExperiment(env_, config);
  EXPECT_GT(result.nlr.count(), 300u);  // nearly every AS announces
  const double median = result.nlr.Quantile(0.5);
  EXPECT_GT(median, 0.7);
  EXPECT_LT(median, 1.6);
  // Hash evaluations reflect the ~1/announced_fraction geometric mean.
  const double evals_per_resolution =
      double(result.total_hash_evals) /
      double(config.num_guids * std::uint64_t(config.k));
  EXPECT_GT(evals_per_resolution, 1.5);
  EXPECT_LT(evals_per_resolution, 2.5);
}

TEST_F(ExperimentsTest, LoadBalanceFastPathChangesNothing) {
  LoadBalanceConfig with_fast, without_fast;
  with_fast.num_guids = without_fast.num_guids = 20'000;
  with_fast.use_fast_path = true;
  without_fast.use_fast_path = false;
  const auto a = RunLoadBalanceExperiment(env_, with_fast);
  const auto b = RunLoadBalanceExperiment(env_, without_fast);
  EXPECT_EQ(a.deputy_fallbacks, b.deputy_fallbacks);
  EXPECT_EQ(a.total_hash_evals, b.total_hash_evals);
  ASSERT_EQ(a.nlr.count(), b.nlr.count());
  EXPECT_DOUBLE_EQ(a.nlr.mean(), b.nlr.mean());
  EXPECT_DOUBLE_EQ(a.nlr.Quantile(0.5), b.nlr.Quantile(0.5));
}

TEST_F(ExperimentsTest, LoadBalanceSharpensWithMoreGuids) {
  // Figure 6: the NLR CDF tightens around 1 as GUID count grows.
  LoadBalanceConfig small, large;
  small.num_guids = 5'000;
  large.num_guids = 200'000;
  const auto small_result = RunLoadBalanceExperiment(env_, small);
  const auto large_result = RunLoadBalanceExperiment(env_, large);
  const double small_spread = small_result.nlr.Quantile(0.9) -
                              small_result.nlr.Quantile(0.1);
  const double large_spread = large_result.nlr.Quantile(0.9) -
                              large_result.nlr.Quantile(0.1);
  EXPECT_LT(large_spread, small_spread);
}

TEST_F(ExperimentsTest, SweepAgreesWithIndependentRuns) {
  // The one-pass multi-K sweep must reproduce each independent run exactly
  // (same seeds, hash-prefix property).
  const auto sweep = RunResponseTimeSweep(env_, {1, 3, 5}, SmallConfig(5));
  ASSERT_EQ(sweep.size(), 3u);
  for (const auto& [k, samples] : sweep) {
    const SampleSet independent =
        RunResponseTimeExperiment(env_, SmallConfig(k));
    ASSERT_EQ(samples.count(), independent.count()) << "k=" << k;
    EXPECT_NEAR(samples.mean(), independent.mean(), 1e-9) << "k=" << k;
    EXPECT_NEAR(samples.Quantile(0.95), independent.Quantile(0.95), 1e-9)
        << "k=" << k;
  }
}

TEST_F(ExperimentsTest, ChurnSweepAgreesWithIndependentRuns) {
  ChurnExperimentConfig config;
  config.base = SmallConfig(5);
  const auto sweep = RunChurnSweep(env_, {0.0, 0.10}, config);
  ASSERT_EQ(sweep.size(), 2u);
  for (const auto& [fraction, samples] : sweep) {
    ChurnExperimentConfig single = config;
    single.churn_fraction = fraction;
    const SampleSet independent = RunChurnExperiment(env_, single);
    ASSERT_EQ(samples.count(), independent.count()) << fraction;
    EXPECT_NEAR(samples.mean(), independent.mean(), 1e-9) << fraction;
  }
}

TEST_F(ExperimentsTest, ResponseTimeIsBitIdenticalAcrossThreadCounts) {
  // The parallel harness partitions by source AS and merges per-partition
  // sample sets in partition order — the sample sequence must match the
  // serial run bit-for-bit for any worker count, including one that does
  // not divide the partition count.
  ResponseTimeConfig serial = SmallConfig(3);
  serial.threads = 1;
  const SampleSet reference = RunResponseTimeExperiment(env_, serial);
  for (const unsigned threads : {2u, 7u}) {
    ResponseTimeConfig parallel = SmallConfig(3);
    parallel.threads = threads;
    const SampleSet run = RunResponseTimeExperiment(env_, parallel);
    // Raw insertion-order samples first (Quantile sorts in place).
    EXPECT_EQ(run.samples(), reference.samples()) << "threads=" << threads;
  }
}

TEST_F(ExperimentsTest, SweepIsBitIdenticalAcrossThreadCounts) {
  const std::vector<int> ks{1, 3, 5};
  ResponseTimeConfig serial = SmallConfig(5);
  serial.threads = 1;
  const auto reference = RunResponseTimeSweep(env_, ks, serial);
  for (const unsigned threads : {2u, 7u}) {
    ResponseTimeConfig parallel = SmallConfig(5);
    parallel.threads = threads;
    const auto sweep = RunResponseTimeSweep(env_, ks, parallel);
    ASSERT_EQ(sweep.size(), reference.size()) << "threads=" << threads;
    for (std::size_t j = 0; j < sweep.size(); ++j) {
      EXPECT_EQ(sweep[j].first, reference[j].first);
      EXPECT_EQ(sweep[j].second.samples(), reference[j].second.samples())
          << "threads=" << threads << " k=" << sweep[j].first;
    }
  }
  // Every quantile the figures report is therefore identical too.
  for (const double q : {0.05, 0.25, 0.5, 0.75, 0.95, 0.99}) {
    ResponseTimeConfig two = SmallConfig(5);
    two.threads = 2;
    const auto sweep = RunResponseTimeSweep(env_, ks, two);
    for (std::size_t j = 0; j < sweep.size(); ++j) {
      EXPECT_DOUBLE_EQ(sweep[j].second.Quantile(q),
                       reference[j].second.Quantile(q));
    }
  }
}

TEST_F(ExperimentsTest, ChurnSweepIsBitIdenticalAcrossThreadCounts) {
  ChurnExperimentConfig serial;
  serial.base = SmallConfig(5);
  serial.base.threads = 1;
  const auto reference = RunChurnSweep(env_, {0.0, 0.10}, serial);
  for (const unsigned threads : {2u, 7u}) {
    ChurnExperimentConfig parallel;
    parallel.base = SmallConfig(5);
    parallel.base.threads = threads;
    const auto sweep = RunChurnSweep(env_, {0.0, 0.10}, parallel);
    ASSERT_EQ(sweep.size(), reference.size());
    for (std::size_t v = 0; v < sweep.size(); ++v) {
      EXPECT_EQ(sweep[v].second.samples(), reference[v].second.samples())
          << "threads=" << threads << " churn=" << sweep[v].first;
    }
  }
}

TEST_F(ExperimentsTest, LoadBalanceIsBitIdenticalAcrossThreadCounts) {
  // Fig 6's NLR pass tallies integer per-AS counts, so per-worker sums are
  // exactly order-independent; the derived NLR set must match bit-for-bit.
  LoadBalanceConfig serial;
  serial.num_guids = 30'000;
  serial.threads = 1;
  const LoadBalanceResult reference = RunLoadBalanceExperiment(env_, serial);
  for (const unsigned threads : {2u, 7u}) {
    LoadBalanceConfig parallel;
    parallel.num_guids = 30'000;
    parallel.threads = threads;
    const LoadBalanceResult run = RunLoadBalanceExperiment(env_, parallel);
    EXPECT_EQ(run.deputy_fallbacks, reference.deputy_fallbacks)
        << "threads=" << threads;
    EXPECT_EQ(run.total_hash_evals, reference.total_hash_evals)
        << "threads=" << threads;
    EXPECT_EQ(run.nlr.samples(), reference.nlr.samples())
        << "threads=" << threads;
  }
}

TEST_F(ExperimentsTest, MetricsExportIsByteIdenticalAcrossThreadCounts) {
  // The CI determinism gate in miniature: the default metrics export and
  // the drained op trace must be byte-identical for every worker count.
  auto run = [&](unsigned threads) {
    MetricsRegistry registry;
    ProbeTracer tracer(1, 3);
    ResponseTimeConfig config = SmallConfig(3);
    config.threads = threads;
    config.metrics = &registry;
    config.tracer = &tracer;
    RunResponseTimeSweep(env_, {1, 3}, config);
    ChurnExperimentConfig churn;
    churn.base = config;
    churn.churn_fraction = 0.05;
    RunChurnExperiment(env_, churn);
    return std::make_pair(MetricsSummaryJson(registry.Snapshot()),
                          OpTraceCsv(tracer.Drain()));
  };
  const auto [metrics1, trace1] = run(1);
  EXPECT_GT(trace1.size(), 100u);  // churn lookups were actually traced
  for (const unsigned threads : {2u, 7u}) {
    const auto [metrics, trace] = run(threads);
    EXPECT_EQ(metrics, metrics1) << "threads=" << threads;
    EXPECT_EQ(trace, trace1) << "threads=" << threads;
  }
}

TEST_F(ExperimentsTest, ResponseTimeIsBitIdenticalAcrossShardCounts) {
  // The sharding analogue of the thread-count gate: for every shards x
  // threads combination, the sample sequence matches the single-shard
  // serial run bit-for-bit.
  ResponseTimeConfig reference_config = SmallConfig(3);
  reference_config.threads = 1;
  reference_config.shards = 1;
  const SampleSet reference =
      RunResponseTimeExperiment(env_, reference_config);
  for (const int shards : {1, 4, 16}) {
    for (const unsigned threads : {1u, 7u}) {
      ResponseTimeConfig config = SmallConfig(3);
      config.threads = threads;
      config.shards = shards;
      const SampleSet run = RunResponseTimeExperiment(env_, config);
      EXPECT_EQ(run.samples(), reference.samples())
          << "shards=" << shards << " threads=" << threads;
    }
  }
}

TEST_F(ExperimentsTest, MetricsExportIsByteIdenticalAcrossShardCounts) {
  // The CI --shards byte-diff job in miniature: default metrics export and
  // op trace for shards {1, 4, 16} x threads {1, 7} must all match.
  auto run = [&](int shards, unsigned threads) {
    MetricsRegistry registry;
    ProbeTracer tracer(1, 3);
    ResponseTimeConfig config = SmallConfig(3);
    config.threads = threads;
    config.shards = shards;
    config.metrics = &registry;
    config.tracer = &tracer;
    RunResponseTimeExperiment(env_, config);
    return std::make_pair(MetricsSummaryJson(registry.Snapshot()),
                          OpTraceCsv(tracer.Drain()));
  };
  const auto [metrics1, trace1] = run(1, 1);
  for (const int shards : {4, 16}) {
    for (const unsigned threads : {1u, 7u}) {
      const auto [metrics, trace] = run(shards, threads);
      EXPECT_EQ(metrics, metrics1)
          << "shards=" << shards << " threads=" << threads;
      EXPECT_EQ(trace, trace1)
          << "shards=" << shards << " threads=" << threads;
    }
  }
}

TEST_F(ExperimentsTest, MetricsSnapshotCountsWorkload) {
  MetricsRegistry registry;
  ResponseTimeConfig config = SmallConfig(3);
  config.metrics = &registry;
  RunChurnExperiment(env_, {config, 0.0, 99});
  std::uint64_t inserts = 0, lookups = 0;
  for (const CounterSnapshot& c : registry.Snapshot().counters) {
    if (c.name == "dmap.inserts") inserts = c.value;
    if (c.name == "dmap.lookups") lookups = c.value;
  }
  EXPECT_EQ(inserts, config.workload.num_guids);
  EXPECT_EQ(lookups, config.workload.num_lookups);
}

TEST_F(ExperimentsTest, BaselineComparisonOrdersSchemes) {
  ResponseTimeConfig config = SmallConfig(5);
  config.workload.num_lookups = 1000;
  const auto rows = RunBaselineComparison(env_, config, 200);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].scheme, "dmap-k5");
  EXPECT_EQ(rows[1].scheme, "chord-dht");

  // DMap's single-overlay-hop lookups beat the multi-hop DHT — the paper's
  // central comparative claim (Sections II-B, VI).
  EXPECT_LT(rows[0].lookup.mean_ms, rows[1].lookup.mean_ms / 2);
  for (const auto& row : rows) {
    EXPECT_EQ(row.lookup.count, 1000u) << row.scheme;
    EXPECT_EQ(row.update.count, 200u) << row.scheme;
    EXPECT_GT(row.lookup.mean_ms, 0.0) << row.scheme;
  }
}

}  // namespace
}  // namespace dmap
