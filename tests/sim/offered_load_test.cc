#include "sim/offered_load.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "obs/export.h"
#include "obs/metrics_registry.h"
#include "obs/probe_trace.h"
#include "sim/environment.h"

namespace dmap {
namespace {

class OfferedLoadTest : public testing::Test {
 protected:
  OfferedLoadTest()
      : env_(BuildEnvironment(EnvironmentParams::Scaled(250, 21))) {}

  OfferedLoadConfig Config() {
    OfferedLoadConfig config;
    config.base.k = 3;
    config.base.workload.num_guids = 300;
    config.base.serving.enabled = true;
    config.base.serving.model = ServiceModel::kExponential;
    config.base.serving.service_rate_per_s = 200.0;  // 5 ms mean service
    config.base.serving.queue_depth = 8;
    config.arrivals.horizon_s = 2.0;
    config.offered_rates_per_s = {200.0, 800.0, 3200.0};
    return config;
  }

  SimEnvironment env_;
};

bool SamePoint(const OfferedLoadPoint& a, const OfferedLoadPoint& b) {
  return a.offered_per_s == b.offered_per_s && a.lookups == b.lookups &&
         a.found == b.found && a.failed == b.failed &&
         a.goodput_per_s == b.goodput_per_s && a.p50_ms == b.p50_ms &&
         a.p99_ms == b.p99_ms && a.p999_ms == b.p999_ms &&
         a.mean_queue_delay_ms == b.mean_queue_delay_ms &&
         a.tier_arrivals == b.tier_arrivals &&
         a.tier_served == b.tier_served && a.tier_queued == b.tier_queued &&
         a.tier_shed_tokens == b.tier_shed_tokens &&
         a.tier_shed_queue == b.tier_shed_queue &&
         a.tier_shed == b.tier_shed && a.hottest_as == b.hottest_as &&
         a.hottest_arrivals == b.hottest_arrivals &&
         a.hot_share == b.hot_share &&
         a.hottest_mm1.utilization == b.hottest_mm1.utilization;
}

TEST_F(OfferedLoadTest, RejectsDisabledServingAndBadRates) {
  OfferedLoadConfig config = Config();
  config.base.serving.enabled = false;
  EXPECT_THROW(RunOfferedLoadSweep(env_, config), std::invalid_argument);

  config = Config();
  config.offered_rates_per_s.clear();
  EXPECT_THROW(RunOfferedLoadSweep(env_, config), std::invalid_argument);

  config = Config();
  config.offered_rates_per_s = {100.0, -5.0};
  EXPECT_THROW(RunOfferedLoadSweep(env_, config), std::invalid_argument);
}

TEST_F(OfferedLoadTest, EffectiveServiceRateCapsAtBucketRate) {
  ServingConfig serving;
  serving.service_rate_per_s = 1000.0;
  serving.concurrency = 4;
  EXPECT_DOUBLE_EQ(EffectiveServiceRatePerS(serving), 4000.0);
  serving.bucket_rate_per_s = 1500.0;  // token bucket binds
  EXPECT_DOUBLE_EQ(EffectiveServiceRatePerS(serving), 1500.0);
  serving.admission = AdmissionPolicy::kNone;  // bucket off: cap lifted
  EXPECT_DOUBLE_EQ(EffectiveServiceRatePerS(serving), 4000.0);
}

// The headline determinism contract: the sweep — including the metrics and
// trace exports — is byte-identical for any worker count.
TEST_F(OfferedLoadTest, DeterministicAcrossThreadCounts) {
  auto run = [&](unsigned threads, std::string* metrics_out,
                 std::string* trace_out) {
    MetricsRegistry registry;
    ProbeTracer tracer(1u, /*sample_every=*/1);
    OfferedLoadConfig config = Config();
    config.base.threads = threads;
    config.base.metrics = &registry;
    config.base.tracer = &tracer;
    const OfferedLoadResult result = RunOfferedLoadSweep(env_, config);
    *metrics_out =
        MetricsSummaryJson(registry.Snapshot(), MetricsExportOptions{});
    *trace_out = OpTraceCsv(tracer.Drain());
    return result;
  };

  std::string metrics_serial, trace_serial;
  const OfferedLoadResult serial = run(1, &metrics_serial, &trace_serial);
  std::string metrics_parallel, trace_parallel;
  const OfferedLoadResult parallel =
      run(7, &metrics_parallel, &trace_parallel);

  ASSERT_EQ(serial.points.size(), parallel.points.size());
  for (std::size_t i = 0; i < serial.points.size(); ++i) {
    EXPECT_TRUE(SamePoint(serial.points[i], parallel.points[i]))
        << "point " << i << " diverged across thread counts";
  }
  EXPECT_EQ(serial.analytic_saturation_per_s,
            parallel.analytic_saturation_per_s);
  EXPECT_EQ(serial.measured_knee_per_s, parallel.measured_knee_per_s);
  EXPECT_EQ(metrics_serial, metrics_parallel);
  EXPECT_EQ(trace_serial, trace_parallel);
}

TEST_F(OfferedLoadTest, LightLoadServesEverythingAtNetworkLatency) {
  OfferedLoadConfig config = Config();
  config.offered_rates_per_s = {100.0};
  const OfferedLoadResult result = RunOfferedLoadSweep(env_, config);
  const OfferedLoadPoint& p = result.points.front();
  ASSERT_GT(p.lookups, 0u);
  EXPECT_EQ(p.found, p.lookups);  // nothing sheds at 100/s vs mu=200/s
  EXPECT_EQ(p.failed, 0u);
  EXPECT_GT(p.p50_ms, 0.0);
  EXPECT_LE(p.p50_ms, p.p99_ms);
  EXPECT_LE(p.p99_ms, p.p999_ms);
  EXPECT_LT(p.hottest_mm1.utilization, 1.0);
  EXPECT_TRUE(p.hottest_mm1.stable);
  EXPECT_GT(result.analytic_saturation_per_s, 0.0);
  EXPECT_EQ(result.measured_knee_per_s, 0.0);  // no knee at light load
}

TEST_F(OfferedLoadTest, OverloadShedsAndInflatesTheTail) {
  const OfferedLoadResult result = RunOfferedLoadSweep(env_, Config());
  const OfferedLoadPoint& light = result.points.front();
  const OfferedLoadPoint& heavy = result.points.back();
  // 3200/s against a 200/s-per-server tier: the tier must shed, queue
  // waits must show up, and the tail must sit far above the light point's.
  EXPECT_GT(heavy.tier_shed, 0u);
  EXPECT_GT(heavy.tier_queued, 0u);
  EXPECT_GT(heavy.mean_queue_delay_ms, light.mean_queue_delay_ms);
  EXPECT_GT(heavy.p99_ms, light.p99_ms);
  EXPECT_FALSE(heavy.hottest_mm1.stable);
  // Tier outcome counts partition the arrivals.
  EXPECT_EQ(heavy.tier_arrivals, heavy.tier_served + heavy.tier_queued +
                                     heavy.tier_shed_tokens +
                                     heavy.tier_shed_queue);
}

}  // namespace
}  // namespace dmap
