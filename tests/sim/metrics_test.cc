#include "sim/metrics.h"

#include <gtest/gtest.h>

#include "bgp/prefix_table.h"

namespace dmap {
namespace {

Cidr C(const std::string& text) {
  Cidr c;
  EXPECT_TRUE(Cidr::Parse(text, &c)) << text;
  return c;
}

TEST(SummarizeTest, EmptyAndPopulated) {
  SampleSet empty;
  const ResponseTimeSummary none = Summarize(empty);
  EXPECT_EQ(none.count, 0u);

  SampleSet samples;
  for (int i = 1; i <= 100; ++i) samples.Add(double(i));
  const ResponseTimeSummary s = Summarize(samples);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean_ms, 50.5);
  EXPECT_DOUBLE_EQ(s.median_ms, 50.5);
  EXPECT_NEAR(s.p95_ms, 95.05, 1e-9);
}

TEST(ComputeNlrTest, PerfectlyProportionalGivesOne) {
  PrefixTable table;
  table.Announce(C("0.0.0.0/2"), 0);    // 25% of space
  table.Announce(C("64.0.0.0/2"), 1);   // 25%
  table.Announce(C("128.0.0.0/1"), 2);  // 50%
  // Replica counts exactly proportional to share.
  const std::vector<std::uint64_t> counts{250, 250, 500};
  const SampleSet nlr = ComputeNlr(counts, table);
  ASSERT_EQ(nlr.count(), 3u);
  for (const double v : nlr.samples()) EXPECT_NEAR(v, 1.0, 1e-12);
}

TEST(ComputeNlrTest, OverAndUnderLoaded) {
  PrefixTable table;
  table.Announce(C("0.0.0.0/1"), 0);    // 50%
  table.Announce(C("128.0.0.0/1"), 1);  // 50%
  const std::vector<std::uint64_t> counts{900, 100};
  const SampleSet nlr = ComputeNlr(counts, table);
  // AS 0: 90% of GUIDs on 50% of space -> 1.8; AS 1 -> 0.2.
  EXPECT_NEAR(nlr.max(), 1.8, 1e-12);
  EXPECT_NEAR(nlr.min(), 0.2, 1e-12);
}

TEST(ComputeNlrTest, NonAnnouncingAsExcluded) {
  PrefixTable table;
  table.Announce(C("0.0.0.0/1"), 0);
  table.Announce(C("128.0.0.0/1"), 1);
  // Three counters but only two announcing ASs; AS 2's counter must be 0
  // anyway (nothing can hash to it) and it is excluded from the CDF.
  const std::vector<std::uint64_t> counts{500, 500, 0};
  const SampleSet nlr = ComputeNlr(counts, table);
  EXPECT_EQ(nlr.count(), 2u);
}

TEST(ComputeNlrTest, NoReplicasThrows) {
  PrefixTable table;
  table.Announce(C("0.0.0.0/1"), 0);
  const std::vector<std::uint64_t> counts{0};
  EXPECT_THROW(ComputeNlr(counts, table), std::invalid_argument);
}

TEST(FractionWithinTest, InclusiveBounds) {
  SampleSet s;
  for (const double v : {0.3, 0.4, 1.0, 1.6, 1.7}) s.Add(v);
  EXPECT_DOUBLE_EQ(FractionWithin(s, 0.4, 1.6), 0.6);
  EXPECT_DOUBLE_EQ(FractionWithin(s, 0.0, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(FractionWithin(s, 5.0, 6.0), 0.0);
  EXPECT_DOUBLE_EQ(FractionWithin(SampleSet{}, 0.0, 1.0), 0.0);
}

}  // namespace
}  // namespace dmap
