#!/usr/bin/env python3
"""Tests for tools/lint_determinism.py.

Each fixture under tests/tools/fixtures/ carries a known-bad construct; the
tests copy it into a throwaway tree (so path-scoped rules see the path they
key on), run the linter as a subprocess, and assert the expected rule fires
— or, for the escape hatch, does not.
"""

import json
import shutil
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
LINTER = REPO / "tools" / "lint_determinism.py"
FIXTURES = Path(__file__).resolve().parent / "fixtures"


def run_linter(root, *extra):
    return subprocess.run(
        [sys.executable, str(LINTER), "--root", str(root), *extra],
        capture_output=True, text=True, check=False)


class LintDeterminismTest(unittest.TestCase):
    def lint_fixture(self, fixture, rel_dir="src", *extra):
        """Copies a fixture into <tmp>/<rel_dir>/ and lints the tree."""
        with tempfile.TemporaryDirectory() as tmp:
            dest = Path(tmp) / rel_dir
            dest.mkdir(parents=True)
            shutil.copy(FIXTURES / fixture, dest / fixture)
            return run_linter(tmp, *extra)

    def assert_violations(self, result, rule, count):
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertEqual(result.stdout.count(f"[determinism:{rule}]"), count,
                         result.stdout)

    def test_wall_clock_fires(self):
        result = self.lint_fixture("wall_clock.cc")
        self.assert_violations(result, "wall-clock", 2)

    def test_rand_fires(self):
        result = self.lint_fixture("rand.cc")
        self.assert_violations(result, "rand", 2)

    def test_float_accumulation_fires_in_obs(self):
        result = self.lint_fixture("float_accumulation.cc", "src/obs")
        self.assert_violations(result, "float-accumulation", 1)

    def test_float_accumulation_scoped_to_obs(self):
        # The same construct outside src/obs/ is not a merge/export path.
        result = self.lint_fixture("float_accumulation.cc", "src/core")
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_unordered_iteration_fires_in_export_function(self):
        result = self.lint_fixture("unordered_iteration.cc")
        # ExportCounters is flagged; CountNonZero iterates the same map but
        # is not an exporter/merge path.
        self.assert_violations(result, "unordered-iteration", 1)

    def test_shard_merge_functions_are_critical(self):
        # Sharded-store merge/enumeration names (SizesByAs, GuidsStoredIn,
        # SizeAt, ForEach*) are in the critical set: unordered iteration
        # there must either be flagged or carry an allow-with-reason.
        result = self.lint_fixture("shard_merge.cc")
        # SizesByAs is flagged; GuidsStoredIn carries the escape hatch and
        # ScanShards is not a merge path.
        self.assert_violations(result, "unordered-iteration", 1)

    def test_allow_with_reason_waives_but_bare_allow_does_not(self):
        result = self.lint_fixture("allowed.cc")
        self.assert_violations(result, "wall-clock", 1)
        # The bare allow is additionally an audit violation in its own
        # right (no reason given).
        self.assertEqual(result.stdout.count("[determinism:allow-audit]"), 1,
                         result.stdout)

    def test_stale_allow_rule_and_missing_reason_are_errors(self):
        result = self.lint_fixture("stale_allow.cc")
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertEqual(result.stdout.count("[determinism:allow-audit]"), 2,
                         result.stdout)
        self.assertIn("unknown rule 'wall-clok'", result.stdout)
        self.assertIn("requires a reason", result.stdout)
        # The misspelled allow waives nothing: the wall clock still fires;
        # the well-formed allow still waives.
        self.assertEqual(result.stdout.count("[determinism:wall-clock]"), 1,
                         result.stdout)

    def test_baseline_suppresses_known_violations(self):
        with tempfile.TemporaryDirectory() as tmp:
            dest = Path(tmp) / "src"
            dest.mkdir(parents=True)
            shutil.copy(FIXTURES / "wall_clock.cc", dest / "wall_clock.cc")
            report_path = Path(tmp) / "report.json"
            first = run_linter(tmp, "--json-out", str(report_path))
            self.assertEqual(first.returncode, 1, first.stdout + first.stderr)
            report = json.loads(report_path.read_text())
            fingerprints = [f["fingerprint"] for f in report["findings"]]
            self.assertEqual(len(fingerprints), 2, report)

            baseline_path = Path(tmp) / "baseline.json"
            baseline_path.write_text(json.dumps({
                "schema": "dmap.lint_baseline.v1",
                "findings": fingerprints,
            }))
            second = run_linter(tmp, "--baseline", str(baseline_path))
            self.assertEqual(second.returncode, 0,
                             second.stdout + second.stderr)
            self.assertIn("2 suppressed by baseline", second.stdout)

            # A partial baseline still fails on the remaining finding.
            baseline_path.write_text(json.dumps({
                "schema": "dmap.lint_baseline.v1",
                "findings": fingerprints[:1],
            }))
            third = run_linter(tmp, "--baseline", str(baseline_path))
            self.assertEqual(third.returncode, 1)

    def test_baseline_with_wrong_schema_is_a_usage_error(self):
        with tempfile.TemporaryDirectory() as tmp:
            (Path(tmp) / "src").mkdir()
            baseline_path = Path(tmp) / "baseline.json"
            baseline_path.write_text(json.dumps({
                "schema": "not.the.schema", "findings": []}))
            result = run_linter(tmp, "--baseline", str(baseline_path))
        self.assertEqual(result.returncode, 2, result.stdout + result.stderr)
        self.assertIn("unexpected schema", result.stderr)

    def test_clean_tree_passes(self):
        with tempfile.TemporaryDirectory() as tmp:
            src = Path(tmp) / "src"
            src.mkdir()
            (src / "clean.cc").write_text(
                "namespace dmap {\n"
                "int Add(int a, int b) { return a + b; }\n"
                "}  // namespace dmap\n")
            result = run_linter(tmp)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_prose_and_strings_do_not_fire(self):
        with tempfile.TemporaryDirectory() as tmp:
            src = Path(tmp) / "src"
            src.mkdir()
            (src / "prose.cc").write_text(
                "// rand() and std::chrono::system_clock in a comment.\n"
                "namespace dmap {\n"
                "const char* kHelp = \"never calls time(nullptr)\";\n"
                "}  // namespace dmap\n")
            result = run_linter(tmp)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)


if __name__ == "__main__":
    unittest.main()
