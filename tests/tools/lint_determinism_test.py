#!/usr/bin/env python3
"""Tests for tools/lint_determinism.py.

Each fixture under tests/tools/fixtures/ carries a known-bad construct; the
tests copy it into a throwaway tree (so path-scoped rules see the path they
key on), run the linter as a subprocess, and assert the expected rule fires
— or, for the escape hatch, does not.
"""

import shutil
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
LINTER = REPO / "tools" / "lint_determinism.py"
FIXTURES = Path(__file__).resolve().parent / "fixtures"


def run_linter(root):
    return subprocess.run(
        [sys.executable, str(LINTER), "--root", str(root)],
        capture_output=True, text=True, check=False)


class LintDeterminismTest(unittest.TestCase):
    def lint_fixture(self, fixture, rel_dir="src"):
        """Copies a fixture into <tmp>/<rel_dir>/ and lints the tree."""
        with tempfile.TemporaryDirectory() as tmp:
            dest = Path(tmp) / rel_dir
            dest.mkdir(parents=True)
            shutil.copy(FIXTURES / fixture, dest / fixture)
            return run_linter(tmp)

    def assert_violations(self, result, rule, count):
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertEqual(result.stdout.count(f"[determinism:{rule}]"), count,
                         result.stdout)

    def test_wall_clock_fires(self):
        result = self.lint_fixture("wall_clock.cc")
        self.assert_violations(result, "wall-clock", 2)

    def test_rand_fires(self):
        result = self.lint_fixture("rand.cc")
        self.assert_violations(result, "rand", 2)

    def test_float_accumulation_fires_in_obs(self):
        result = self.lint_fixture("float_accumulation.cc", "src/obs")
        self.assert_violations(result, "float-accumulation", 1)

    def test_float_accumulation_scoped_to_obs(self):
        # The same construct outside src/obs/ is not a merge/export path.
        result = self.lint_fixture("float_accumulation.cc", "src/core")
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_unordered_iteration_fires_in_export_function(self):
        result = self.lint_fixture("unordered_iteration.cc")
        # ExportCounters is flagged; CountNonZero iterates the same map but
        # is not an exporter/merge path.
        self.assert_violations(result, "unordered-iteration", 1)

    def test_shard_merge_functions_are_critical(self):
        # Sharded-store merge/enumeration names (SizesByAs, GuidsStoredIn,
        # SizeAt, ForEach*) are in the critical set: unordered iteration
        # there must either be flagged or carry an allow-with-reason.
        result = self.lint_fixture("shard_merge.cc")
        # SizesByAs is flagged; GuidsStoredIn carries the escape hatch and
        # ScanShards is not a merge path.
        self.assert_violations(result, "unordered-iteration", 1)

    def test_allow_with_reason_waives_but_bare_allow_does_not(self):
        result = self.lint_fixture("allowed.cc")
        self.assert_violations(result, "wall-clock", 1)

    def test_clean_tree_passes(self):
        with tempfile.TemporaryDirectory() as tmp:
            src = Path(tmp) / "src"
            src.mkdir()
            (src / "clean.cc").write_text(
                "namespace dmap {\n"
                "int Add(int a, int b) { return a + b; }\n"
                "}  // namespace dmap\n")
            result = run_linter(tmp)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_prose_and_strings_do_not_fire(self):
        with tempfile.TemporaryDirectory() as tmp:
            src = Path(tmp) / "src"
            src.mkdir()
            (src / "prose.cc").write_text(
                "// rand() and std::chrono::system_clock in a comment.\n"
                "namespace dmap {\n"
                "const char* kHelp = \"never calls time(nullptr)\";\n"
                "}  // namespace dmap\n")
            result = run_linter(tmp)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)


if __name__ == "__main__":
    unittest.main()
