#!/usr/bin/env python3
"""Tests for tools/analyze (the semantic call-graph analyzer).

Each fixture under tests/tools/analyze_fixtures/ carries known violations;
the tests copy fixtures into a throwaway tree, run the analyzer as a
subprocess with the lite frontend (always available), and assert the
expected checker fires the expected number of times. The call-graph tests
assert resolved edges (virtual dispatch, nested lambdas, function pointers)
via --dump-callgraph. The clang-frontend parity test runs only when the
python bindings and libclang are installed (the CI semantic-analysis job);
the default container skips it.
"""

import json
import shutil
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).resolve().parent / "analyze_fixtures"


def clang_frontend_available():
    sys.path.insert(0, str(REPO))
    try:
        from tools.analyze import frontend_clang
        return frontend_clang.available()
    except Exception:  # pragma: no cover - import machinery varies
        return False
    finally:
        sys.path.pop(0)


def run_analyzer(root, *extra, frontend="lite"):
    return subprocess.run(
        [sys.executable, "-m", "tools.analyze", "--root", str(root),
         "--frontend", frontend, *extra],
        capture_output=True, text=True, check=False, cwd=REPO)


def stage(tmp, *fixtures):
    """Copies fixtures into <tmp>/src/ — the analyzer's default path."""
    src = Path(tmp) / "src"
    src.mkdir(parents=True, exist_ok=True)
    for fixture in fixtures:
        shutil.copy(FIXTURES / fixture, src / fixture)
    return src


class AnalyzeCheckerTest(unittest.TestCase):
    def analyze_fixture(self, fixture, *extra):
        with tempfile.TemporaryDirectory() as tmp:
            stage(tmp, fixture)
            return run_analyzer(tmp, *extra)

    def assert_findings(self, result, checker, count):
        self.assertEqual(result.returncode, 1,
                         result.stdout + result.stderr)
        self.assertEqual(result.stdout.count(f"[{checker}]"), count,
                         result.stdout)

    def test_serial_confinement_fires(self):
        result = self.analyze_fixture("serial_confinement.cc",
                                      "--checks", "serial-confinement")
        self.assert_findings(result, "serial-confinement", 2)
        self.assertIn("fix::Store::Commit", result.stdout)
        self.assertIn("fix::Store::Publish", result.stdout)
        self.assertIn("RunChunks", result.stdout)  # dispatch site is named
        self.assertNotIn("ReadOnly", result.stdout)

    def test_hot_path_purity_fires(self):
        result = self.analyze_fixture("hot_path.cc",
                                      "--checks", "hot-path-purity")
        self.assert_findings(result, "hot-path-purity", 3)
        self.assertIn("allocates", result.stdout)
        self.assertIn("locks", result.stdout)
        self.assertIn("io", result.stdout)
        # The allocating callee is named with the full path from the hot
        # function; the allow-hatch user stays clean.
        self.assertIn("fix::Index::Grow", result.stdout)
        self.assertNotIn("FastClean", result.stdout)
        self.assertNotIn("ScratchFor", result.stdout)

    def test_hot_path_allow_misuse_fires(self):
        result = self.analyze_fixture("hot_path_allow.cc",
                                      "--checks", "hot-path-purity")
        self.assert_findings(result, "hot-path-purity", 2)
        self.assertIn("non-empty reason", result.stdout)
        self.assertIn("pick one", result.stdout)

    def test_seed_purity_fires(self):
        result = self.analyze_fixture("seed_purity.cc",
                                      "--checks", "seed-purity")
        self.assert_findings(result, "seed-purity", 3)
        self.assertIn("rand()", result.stdout)
        self.assertIn("time()", result.stdout)
        self.assertIn("std::random_device", result.stdout)
        # The dead-code source is reported with the unreachable qualifier.
        self.assertEqual(result.stdout.count("not reachable"), 1,
                         result.stdout)
        # The reachable one names the entry point on its path.
        self.assertIn("RunFixtureExperiment", result.stdout)

    def test_metrics_stability_fires(self):
        result = self.analyze_fixture(
            "metrics_stability.cc", "--checks", "metrics-stability",
            "--metrics-inventory", str(FIXTURES / "metrics_inventory.json"))
        self.assert_findings(result, "metrics-stability", 5)
        self.assertIn("'fix.wrong'", result.stdout)
        self.assertIn("not in the inventory", result.stdout)
        self.assertIn("'fix.unknown'", result.stdout)
        self.assertIn("conflicting stabilities", result.stdout)
        self.assertIn("stale inventory entry 'fix.stale'", result.stdout)
        # Correctly classified and pattern-matched sites stay silent.
        self.assertNotIn("fix.good", result.stdout)
        self.assertNotIn("latency_ms", result.stdout)

    def test_clean_tree_passes(self):
        with tempfile.TemporaryDirectory() as tmp:
            src = Path(tmp) / "src"
            src.mkdir()
            (src / "clean.cc").write_text(
                "namespace dmap {\n"
                "int Add(int a, int b) { return a + b; }\n"
                "}  // namespace dmap\n")
            result = run_analyzer(
                tmp, "--checks",
                "serial-confinement,hot-path-purity,seed-purity")
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_baseline_suppresses_known_findings(self):
        with tempfile.TemporaryDirectory() as tmp:
            stage(tmp, "serial_confinement.cc")
            report_path = Path(tmp) / "report.json"
            first = run_analyzer(tmp, "--checks", "serial-confinement",
                                 "--json-out", str(report_path))
            self.assertEqual(first.returncode, 1, first.stdout + first.stderr)
            report = json.loads(report_path.read_text())
            self.assertEqual(report["schema"], "dmap.semantic_analysis.v1")
            fingerprints = [f["fingerprint"] for f in report["findings"]]
            self.assertEqual(len(fingerprints), 2, report)

            baseline_path = Path(tmp) / "baseline.json"
            baseline_path.write_text(json.dumps({
                "schema": "dmap.lint_baseline.v1",
                "findings": fingerprints,
            }))
            second = run_analyzer(tmp, "--checks", "serial-confinement",
                                  "--baseline", str(baseline_path))
            self.assertEqual(second.returncode, 0,
                             second.stdout + second.stderr)
            self.assertIn("suppressed=2", second.stderr)

            # A partial baseline still fails on the remaining finding.
            baseline_path.write_text(json.dumps({
                "schema": "dmap.lint_baseline.v1",
                "findings": fingerprints[:1],
            }))
            third = run_analyzer(tmp, "--checks", "serial-confinement",
                                 "--baseline", str(baseline_path))
            self.assertEqual(third.returncode, 1)
            self.assertIn("suppressed=1", third.stderr)


class AnalyzeCallGraphTest(unittest.TestCase):
    def dump(self, *fixtures, frontend="lite", tree=None):
        with tempfile.TemporaryDirectory() as tmp:
            stage(tmp, *fixtures)
            out = Path(tmp) / "callgraph.json"
            args = ["--dump-callgraph", str(out)]
            if frontend == "clang":
                args += ["--compile-commands",
                         str(self._write_compile_commands(tmp, fixtures))]
            result = run_analyzer(tmp, *args, frontend=frontend)
            self.assertEqual(result.returncode, 0,
                             result.stdout + result.stderr)
            return json.loads(out.read_text())

    @staticmethod
    def _write_compile_commands(tmp, fixtures):
        path = Path(tmp) / "compile_commands.json"
        path.write_text(json.dumps([
            {"directory": str(tmp),
             "command": f"clang++ -std=c++20 -I{REPO}/src -c src/{f}",
             "file": f"src/{f}"}
            for f in fixtures
        ]))
        return path

    def assert_virtual_dispatch(self, graph):
        calls = graph["functions"]["fix::Dispatch"]["calls"]
        for backend in ("fix::TrieBackend::Resolve",
                        "fix::HashBackend::Resolve",
                        "fix::SnapshotBackend::Resolve",
                        "fix::RemoteBackend::Resolve"):
            self.assertIn(backend, calls, calls)

    def test_virtual_dispatch_reaches_all_backends(self):
        self.assert_virtual_dispatch(self.dump("callgraph_virtual.cc"))

    def test_nested_lambdas_resolve_through_the_chain(self):
        graph = self.dump("callgraph_lambda.cc")
        entries = graph["parallel_entries"]
        self.assertEqual(len(entries), 1, entries)
        entry = entries[0]["callee"]
        self.assertIn("{lambda@", entry)
        self.assertTrue(entry.startswith("fix::Nested::"), entry)
        # Entry lambda -> inner lambda -> Leaf.
        outer_calls = graph["functions"][entry]["calls"]
        inner = [c for c in outer_calls if "{lambda@" in c]
        self.assertEqual(len(inner), 1, outer_calls)
        self.assertIn("fix::Leaf", graph["functions"][inner[0]]["calls"])

    def test_function_pointers_resolve(self):
        graph = self.dump("callgraph_fnptr.cc")
        calls = graph["functions"]["fix::Apply"]["calls"]
        self.assertIn("fix::Worker", calls, calls)
        self.assertIn("fix::Other", calls, calls)
        entries = [(e["api"], e["callee"]) for e in graph["parallel_entries"]]
        self.assertIn(("ParallelFor", "fix::Worker"), entries, entries)

    @unittest.skipUnless(clang_frontend_available(),
                         "libclang python bindings not installed")
    def test_clang_frontend_parity_on_virtual_dispatch(self):
        graph = self.dump("callgraph_virtual.cc", frontend="clang")
        self.assertEqual(graph["frontend"], "clang")
        self.assert_virtual_dispatch(graph)


if __name__ == "__main__":
    unittest.main()
