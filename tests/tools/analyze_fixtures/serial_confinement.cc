// Fixture: serial-phase confinement. The analyzer must flag the two
// serial-only functions reachable from the RunChunks lambda — Commit
// (REQUIRES_SERIAL) called directly, Publish (function-level
// WRITE_SERIAL_READ_SHARED) through Store::Indirect — and accept both the
// read-only call inside the lambda and the serial harness below.
#include "common/thread_annotations.h"

namespace fix {

class ThreadPool {
 public:
  template <typename Fn>
  void RunChunks(unsigned long count, Fn fn);
};

class Store {
 public:
  void Commit(int v) REQUIRES_SERIAL();
  void Publish() WRITE_SERIAL_READ_SHARED();
  void Indirect() { Publish(); }
  int ReadOnly(int v) const { return v; }
};

void ParallelHarness(ThreadPool& pool, Store& store) {
  pool.RunChunks(8, [&](unsigned long i, unsigned worker) {
    store.Commit(int(i));          // VIOLATION: serial write in a worker
    store.Indirect();              // VIOLATION: reaches Publish
    (void)store.ReadOnly(int(i));  // fine: read API
    (void)worker;
  });
}

// Serial sections may call the write API freely.
void SerialHarness(Store& store) {
  store.Commit(1);
  store.Publish();
}

}  // namespace fix
