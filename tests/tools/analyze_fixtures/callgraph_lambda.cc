// Fixture: lambdas in lambdas. The RunChunks argument is the parallel
// entry; it binds an inner lambda to a variable and calls it, and the inner
// lambda calls Leaf — the call-graph tests assert the whole chain
// (entry lambda -> inner lambda -> Leaf) resolves.
namespace fix {

class ThreadPool {
 public:
  template <typename Fn>
  void RunChunks(unsigned long count, Fn fn);
};

int Leaf(int v) { return v * 3; }

void Nested(ThreadPool& pool) {
  pool.RunChunks(4, [&](unsigned long chunk, unsigned worker) {
    auto inner = [&](int v) { return Leaf(v + int(worker)); };
    int acc = 0;
    for (int i = 0; i < int(chunk); ++i) acc += inner(i);
    (void)acc;
  });
}

}  // namespace fix
