// Fixture: DMAP_HOT_PATH_ALLOW misuse. An empty reason string and a
// function carrying both DMAP_HOT_PATH and DMAP_HOT_PATH_ALLOW are each
// standalone analyzer errors, independent of any call graph.
#include "common/thread_annotations.h"

namespace fix {

int NoReason(int n) DMAP_HOT_PATH_ALLOW("");  // VIOLATION: empty reason

int Both(int n) DMAP_HOT_PATH DMAP_HOT_PATH_ALLOW(  // VIOLATION: pick one
    "a reason string does not make the combination legal");

int NoReason(int n) { return n; }
int Both(int n) { return n; }

}  // namespace fix
