// Fixture: seed purity. RunFixtureExperiment is an entry point (Run*): it
// reaches rand() through DrawNoise and names a wall clock directly.
// DeadDraw is unreachable from any entry point but its banned source is
// still flagged (dead code is one refactor away from live).
#include <cstdlib>
#include <ctime>
#include <random>

namespace fix {

int DrawNoise() {
  return rand();  // VIOLATION via RunFixtureExperiment
}

double RunFixtureExperiment(int points) {
  double acc = 0.0;
  for (int i = 0; i < points; ++i) acc += double(DrawNoise());
  acc += double(time(nullptr));  // VIOLATION: wall clock at an entry point
  return acc;
}

int DeadDraw() {
  std::random_device rd;  // VIOLATION: unreachable, still banned
  return int(rd());
}

}  // namespace fix
