// Fixture: virtual dispatch. A call through the NameResolver base must fan
// out to every override in the hierarchy, including SnapshotBackend two
// levels down — the call-graph tests assert all four backend edges.
namespace fix {

class NameResolver {
 public:
  virtual ~NameResolver() = default;
  virtual int Resolve(int key) = 0;
};

class TrieBackend : public NameResolver {
 public:
  int Resolve(int key) override { return key + 1; }
};

class HashBackend : public NameResolver {
 public:
  int Resolve(int key) override { return key + 2; }
};

class SnapshotBackend : public HashBackend {
 public:
  int Resolve(int key) override { return key + 3; }
};

class RemoteBackend : public NameResolver {
 public:
  int Resolve(int key) override { return key + 4; }
};

int Dispatch(NameResolver& resolver, int key) {
  return resolver.Resolve(key);
}

}  // namespace fix
