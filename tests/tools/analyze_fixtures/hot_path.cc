// Fixture: hot-path purity. Three DMAP_HOT_PATH functions are impure —
// FastLookup allocates transitively (through Grow), FastLog does I/O
// directly, FastGuarded locks — and FastClean is pure because the traversal
// must stop at the allow-listed ScratchFor escape hatch without reporting
// its allocations.
#include <cstdio>
#include <vector>

#include "common/thread_annotations.h"

namespace fix {

struct Mutex {
  void Lock();
  void Unlock();
};

class Index {
 public:
  int FastLookup(int key) const DMAP_HOT_PATH;
  int FastLog(int key) const DMAP_HOT_PATH;
  int FastGuarded(int key) const DMAP_HOT_PATH;
  int FastClean(int key) const DMAP_HOT_PATH;

 private:
  void Grow(int n) const;
  std::vector<int>& ScratchFor(int n) const DMAP_HOT_PATH_ALLOW(
      "scratch reuses a high-water-mark buffer; steady state allocates "
      "nothing");
  mutable std::vector<int> scratch_;
  mutable Mutex mu_;
};

int Index::FastLookup(int key) const {
  Grow(key);  // VIOLATION: Grow allocates
  return key;
}

void Index::Grow(int n) const { scratch_.resize(std::size_t(n)); }

int Index::FastLog(int key) const {
  std::printf("%d\n", key);  // VIOLATION: I/O on the hot path
  return key;
}

int Index::FastGuarded(int key) const {
  mu_.Lock();  // VIOLATION: lock on the hot path
  mu_.Unlock();
  return key;
}

int Index::FastClean(int key) const {
  return int(ScratchFor(key).size());  // fine: allow hatch stops traversal
}

std::vector<int>& Index::ScratchFor(int n) const {
  scratch_.resize(std::size_t(n));
  return scratch_;
}

}  // namespace fix
