// Fixture: metrics stability, checked against the inventory next to it
// (analyze_fixtures/metrics_inventory.json: fix.good / fix.conflict /
// fix.wrong / fix.stale stable, fix.execution execution, plus the
// '*.latency_ms' suffix pattern). Expected findings: fix.wrong
// misclassified, fix.unknown absent from the inventory, fix.conflict both
// misclassified at its second site and conflicting across sites, and
// fix.stale stale.
#include <string>
#include <vector>

enum class MetricStability { kDeterministic, kExecution };

std::vector<double> Boundaries();

class MetricsRegistry {
 public:
  using CounterId = unsigned;
  using HistogramId = unsigned;
  CounterId Counter(
      const std::string& name,
      MetricStability stability = MetricStability::kDeterministic);
  HistogramId Histogram(
      const std::string& name, const std::vector<double>& bounds,
      MetricStability stability = MetricStability::kDeterministic);
};

namespace fix {

class Harness {
 public:
  void Register(MetricsRegistry& registry, const std::string& prefix) {
    good_ = registry.Counter("fix.good");
    exec_ = registry.Counter("fix.execution", MetricStability::kExecution);
    // VIOLATION: the inventory (export stable set) lists fix.wrong as
    // stable, but this site registers it as kExecution.
    wrong_ = registry.Counter("fix.wrong", MetricStability::kExecution);
    // VIOLATION: fix.unknown is in neither inventory list.
    unknown_ = registry.Histogram("fix.unknown", Boundaries());
    // VIOLATION x2: the second site conflicts with the first (and with the
    // inventory).
    conflict_a_ = registry.Counter("fix.conflict");
    conflict_b_ = registry.Counter("fix.conflict",
                                   MetricStability::kExecution);
    // Fine: a computed-prefix site matching the '*.latency_ms' pattern.
    latency_ = registry.Histogram(prefix + ".latency_ms", Boundaries());
  }

 private:
  MetricsRegistry::CounterId good_ = 0;
  MetricsRegistry::CounterId exec_ = 0;
  MetricsRegistry::CounterId wrong_ = 0;
  MetricsRegistry::HistogramId unknown_ = 0;
  MetricsRegistry::CounterId conflict_a_ = 0;
  MetricsRegistry::CounterId conflict_b_ = 0;
  MetricsRegistry::HistogramId latency_ = 0;
};

}  // namespace fix
