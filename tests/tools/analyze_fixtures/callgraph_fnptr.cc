// Fixture: function pointers. Apply calls Worker through `auto fn =
// &Worker` and Other through a pointer assigned after declaration; Spawn
// passes Worker by name to ParallelFor. The call-graph tests assert both
// edges and the parallel entry.
namespace fix {

class ThreadPool {
 public:
  template <typename Fn>
  void ParallelFor(unsigned long count, Fn fn);
};

int Worker(int v) { return v * 2; }
int Other(int v) { return v + 2; }

int Apply(int v) {
  auto fn = &Worker;
  int (*gn)(int);
  gn = Other;
  return fn(v) + gn(v);
}

void Spawn(ThreadPool& pool) {
  pool.ParallelFor(4, Worker);
}

}  // namespace fix
