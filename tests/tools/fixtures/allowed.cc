// Linter fixture for the escape hatch: a lint:allow with a reason waives
// the rule; a bare lint:allow without one does not.
// Not compiled — consumed by tests/tools/lint_determinism_test.py.
#include <ctime>

namespace dmap {

long StartStamp() {
  // lint:allow(determinism:wall-clock) log header only, never in results
  return time(nullptr);
}

long BadStamp() {
  return time(nullptr);  // lint:allow(determinism:wall-clock)
}

}  // namespace dmap
