// Linter fixture for the escape-hatch audit: an allow naming a rule the
// linter does not implement (typo'd "wall-clok") and an allow with no
// reason are each allow-audit violations; the well-formed allow on a rule
// that exists stays silent.
// Not compiled — consumed by tests/tools/lint_determinism_test.py.
#include <ctime>

namespace dmap {

long TypoRule() {
  // lint:allow(determinism:wall-clok) misspelled, waives nothing
  return time(nullptr);
}

int BareAllow(int v) {
  // lint:allow(determinism:rand)
  return v;
}

long WellFormed() {
  // lint:allow(determinism:wall-clock) log header only, never in results
  return time(nullptr);
}

}  // namespace dmap
