// Linter fixture: iterating an unordered container in a function that feeds
// an exporter must be rejected (determinism:unordered-iteration), while the
// same iteration in a non-export path is fine.
// Not compiled — consumed by tests/tools/lint_determinism_test.py.
#include <string>
#include <unordered_map>

namespace dmap {

std::string ExportCounters(
    const std::unordered_map<std::string, int>& counters) {
  std::string out;
  for (const auto& entry : counters) {
    out += entry.first;
  }
  return out;
}

int CountNonZero(const std::unordered_map<std::string, int>& counters) {
  int total = 0;
  for (const auto& entry : counters) {
    if (entry.second != 0) ++total;
  }
  return total;
}

}  // namespace dmap
