// Linter fixture: unseeded randomness must be rejected (determinism:rand).
// Not compiled — consumed by tests/tools/lint_determinism_test.py.
#include <cstdlib>
#include <random>

namespace dmap {

int RandomDelay() { return std::rand() % 100; }

unsigned HardwareSeed() {
  std::random_device device;
  return device();
}

}  // namespace dmap
