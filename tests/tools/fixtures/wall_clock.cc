// Linter fixture: wall-clock reads must be rejected (determinism:wall-clock).
// Not compiled — consumed by tests/tools/lint_determinism_test.py.
#include <chrono>
#include <ctime>

namespace dmap {

double NowSeconds() {
  const auto now = std::chrono::system_clock::now();
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}

long NowUnix() { return time(nullptr); }

}  // namespace dmap
