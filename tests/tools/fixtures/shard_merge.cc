// Fixture: unordered iteration over per-shard maps inside sharded-store
// merge/enumeration functions. SizesByAs and GuidsStoredIn are in the
// linter's critical-function set; ScanShards is not. The allow-marked loop
// documents the order-independent-sum escape hatch.
#include <cstddef>
#include <unordered_map>
#include <vector>

namespace fixture {

struct Shard {
  std::unordered_map<int, int> map;
};

std::vector<std::size_t> SizesByAs(const std::vector<Shard>& shards) {
  std::vector<std::size_t> sizes(16, 0);
  for (const Shard& shard : shards) {
    for (const auto& [key, value] : shard.map) {  // flagged
      sizes[std::size_t(key % 16)] += std::size_t(value);
    }
  }
  return sizes;
}

std::vector<int> GuidsStoredIn(const Shard& shard) {
  std::vector<int> guids;
  // lint:allow(determinism:unordered-iteration) result is sorted by caller
  for (const auto& [key, value] : shard.map) {
    guids.push_back(key + value);
  }
  return guids;
}

int ScanShards(const std::vector<Shard>& shards) {
  int total = 0;
  for (const Shard& shard : shards) {
    for (const auto& [key, value] : shard.map) {  // not a merge path
      total += key + value;
    }
  }
  return total;
}

}  // namespace fixture
