// Linter fixture: float accumulation in an obs merge path must be rejected
// (determinism:float-accumulation) — the test copies this under src/obs/.
// Not compiled — consumed by tests/tools/lint_determinism_test.py.
#include <vector>

namespace dmap {

struct Cell {
  double total = 0.0;
};

double MergeTotals(const std::vector<Cell>& cells) {
  double merged = 0.0;
  for (const Cell& cell : cells) {
    merged += cell.total;
  }
  return merged;
}

}  // namespace dmap
