#include "runtime/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace dmap {
namespace {

TEST(ThreadPoolTest, ResolvePassesExplicitCountThrough) {
  EXPECT_EQ(ThreadPool::Resolve(1), 1u);
  EXPECT_EQ(ThreadPool::Resolve(7), 7u);
}

TEST(ThreadPoolTest, ResolveZeroUsesEnvironmentOverride) {
  ::setenv("DMAP_THREADS", "3", /*overwrite=*/1);
  EXPECT_EQ(ThreadPool::Resolve(0), 3u);
  ::unsetenv("DMAP_THREADS");
  EXPECT_EQ(ThreadPool::Resolve(0), ThreadPool::HardwareConcurrency());
}

TEST(ThreadPoolTest, SizeOneRunsCallerOnly) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(8);
  pool.RunChunks(8, [&](std::size_t chunk, unsigned worker) {
    EXPECT_EQ(worker, 0u);
    seen[chunk] = std::this_thread::get_id();
  });
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPoolTest, EveryChunkRunsExactlyOnce) {
  for (const unsigned threads : {1u, 2u, 4u, 7u}) {
    ThreadPool pool(threads);
    for (const std::size_t chunks : {std::size_t{1}, std::size_t{3},
                                     std::size_t{17}, std::size_t{100}}) {
      std::vector<std::atomic<int>> hits(chunks);
      pool.RunChunks(chunks, [&](std::size_t chunk, unsigned worker) {
        ASSERT_LT(worker, pool.size());
        hits[chunk].fetch_add(1, std::memory_order_relaxed);
      });
      for (std::size_t c = 0; c < chunks; ++c) {
        EXPECT_EQ(hits[c].load(), 1) << "threads=" << threads
                                     << " chunk=" << c;
      }
    }
  }
}

TEST(ThreadPoolTest, ParallelForCoversRangeOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kBegin = 10, kEnd = 1010;
  std::vector<std::atomic<int>> hits(kEnd);
  pool.ParallelFor(kBegin, kEnd, [&](std::size_t i, unsigned) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kBegin; ++i) EXPECT_EQ(hits[i].load(), 0);
  for (std::size_t i = kBegin; i < kEnd; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsNoOp) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelFor(5, 5, [&](std::size_t, unsigned) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossJobs) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.RunChunks(11, [&](std::size_t chunk, unsigned) {
      sum.fetch_add(chunk, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 55u);  // 0 + 1 + ... + 10
  }
}

TEST(ThreadPoolTest, FirstExceptionPropagatesToCaller) {
  for (const unsigned threads : {1u, 4u}) {
    ThreadPool pool(threads);
    EXPECT_THROW(
        pool.RunChunks(8,
                       [&](std::size_t chunk, unsigned) {
                         if (chunk == 3) {
                           throw std::runtime_error("chunk failure");
                         }
                       }),
        std::runtime_error)
        << "threads=" << threads;
    // The pool must survive a throwing job and accept new work.
    std::atomic<int> count{0};
    pool.RunChunks(4, [&](std::size_t, unsigned) { ++count; });
    EXPECT_EQ(count.load(), 4);
  }
}

TEST(ThreadPoolTest, WorkersActuallyRunConcurrently) {
  // Workers (the caller included) race for chunks off a shared counter, so
  // no particular worker is guaranteed a chunk — on a loaded single-core
  // host the helpers can drain the queue before the caller's first claim.
  // The invariants: every chunk runs exactly once, some worker ran, and
  // every claimed worker id is within the pool.
  ThreadPool pool(4);
  std::atomic<unsigned> distinct_mask{0};
  std::atomic<std::size_t> chunks_run{0};
  pool.RunChunks(64, [&](std::size_t, unsigned worker) {
    distinct_mask.fetch_or(1u << worker, std::memory_order_relaxed);
    chunks_run.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(chunks_run.load(), 64u);
  const unsigned mask = distinct_mask.load();
  EXPECT_NE(mask, 0u);
  EXPECT_EQ(mask & ~0xfu, 0u);  // only workers 0..3 exist
}

}  // namespace
}  // namespace dmap
