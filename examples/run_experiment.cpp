// Config-driven experiment runner: the batch interface for users who want
// to run their own parameter studies without writing C++.
//
//   ./build/examples/run_experiment <config-file>
//   ./build/examples/run_experiment --print-defaults
//
// Example config (all keys optional, defaults shown by --print-defaults):
//
//   experiment = response_time      # response_time | churn | load_balance
//                                   # | analytical | baselines | staleness
//                                   # | offered_load
//   ases       = 8000
//   seed       = 42
//   geographic = false
//   guids      = 20000
//   lookups    = 100000
//   ks         = 1, 3, 5
//   churn_fractions = 0.0, 0.05, 0.10
//   local_replica   = true
//   threads    = 0                  # experiment workers; 0 = all cores
//   path_oracle = hub               # point-distance engine: hub | lru
//   metrics_out  =                  # metrics summary (.json => JSON)
//   trace_out    =                  # per-lookup probe-trace CSV
//   trace_sample = 1                # trace 1-in-N GUIDs
//   serving      =                  # serving tier: file or inline k=v,...
//   offered_rates = 500, 1000, 2000, 4000   # offered_load sweep (req/s)
//   horizon_s    = 5                # offered_load arrival horizon
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>

#include "analysis/jellyfish_model.h"
#include "common/config.h"
#include "obs/export.h"
#include "obs/metrics_registry.h"
#include "obs/probe_trace.h"
#include "sim/experiments.h"
#include "sim/offered_load.h"
#include "sim/replication.h"
#include "sim/staleness.h"
#include "topo/io.h"

namespace {

using namespace dmap;

int Run(const Config& config) {
  const std::string experiment = config.GetString("experiment",
                                                  "response_time");

  EnvironmentParams env_params = EnvironmentParams::Scaled(
      std::uint32_t(config.GetInt("ases", 8000)),
      std::uint64_t(config.GetInt("seed", 42)));
  env_params.topology.geographic = config.GetBool("geographic", false);

  const SimConfig sim = SimConfig::FromConfig(config);

  // Observability sinks: exports are bit-identical for every `threads`
  // value (execution-dependent counters are excluded by default).
  std::optional<MetricsRegistry> registry;
  std::optional<ProbeTracer> tracer;
  if (!sim.metrics_out.empty()) registry.emplace();
  if (!sim.trace_out.empty()) tracer.emplace(1u, sim.trace_sample);
  const auto finish_observability = [&] {
    if (registry.has_value()) {
      WriteMetricsSummary(sim.metrics_out, registry->Snapshot(),
                          MetricsExportOptions{});
      std::printf("metrics summary written to %s\n",
                  sim.metrics_out.c_str());
    }
    if (tracer.has_value()) {
      const auto traces = tracer->Drain();
      WriteOpTrace(sim.trace_out, traces);
      std::printf("op trace (%zu sampled ops) written to %s\n",
                  traces.size(), sim.trace_out.c_str());
    }
  };

  ResponseTimeConfig rt;
  rt.threads = sim.threads;
  rt.shards = sim.shards;
  rt.path_oracle = sim.path_oracle == "lru" ? PathOracleBackend::kLru
                                            : PathOracleBackend::kHub;
  rt.metrics = registry.has_value() ? &*registry : nullptr;
  rt.tracer = tracer.has_value() ? &*tracer : nullptr;
  rt.workload.num_guids = std::uint64_t(config.GetInt("guids", 20'000));
  rt.workload.num_lookups =
      std::uint64_t(config.GetInt("lookups", 100'000));
  rt.workload.seed = std::uint64_t(config.GetInt("workload_seed", 1));
  rt.local_replica = config.GetBool("local_replica", true);
  if (!sim.serving.empty()) {
    rt.serving = ServingConfig::ParseArg(sim.serving);
  }

  std::vector<int> ks;
  for (const std::int64_t k : config.GetIntList("ks", {1, 3, 5})) {
    ks.push_back(int(k));
  }
  const std::vector<double> churn_fractions =
      config.GetDoubleList("churn_fractions", {0.0, 0.05, 0.10});
  const int replications = int(config.GetInt("replications", 1));
  const std::string topology_file = config.GetString("topology_file", "");
  const std::vector<double> move_intervals =
      config.GetDoubleList("move_intervals", {300, 60, 20, 5});
  const std::vector<double> offered_rates =
      config.GetDoubleList("offered_rates", {500, 1000, 2000, 4000});
  const double horizon_s = config.GetDouble("horizon_s", 5.0);

  // Typos in the config are fatal before any compute is spent.
  const auto unused = config.UnusedKeys();
  if (!unused.empty()) {
    std::string all;
    for (const auto& key : unused) all += " " + key;
    std::fprintf(stderr, "unknown config key(s):%s\n", all.c_str());
    return 2;
  }

  if (experiment == "analytical") {
    TextTable table({"K", "present (ms)", "medium-term (ms)",
                     "long-term (ms)"});
    for (const int k : ks) {
      table.AddRow(
          {std::to_string(k),
           TextTable::FormatDouble(
               PresentInternetModel().ResponseTimeUpperBoundMs(k)),
           TextTable::FormatDouble(
               MediumTermInternetModel().ResponseTimeUpperBoundMs(k)),
           TextTable::FormatDouble(
               LongTermInternetModel().ResponseTimeUpperBoundMs(k))});
    }
    std::printf("%s", table.Render().c_str());
    finish_observability();
    return 0;
  }

  if (experiment == "response_time" && replications > 1) {
    // Multi-seed replication: rebuild topology + workload per seed and
    // report mean response time with a 95% CI per K.
    TextTable table({"K", "runs", "mean of means (ms)", "95% CI (ms)"});
    for (const int k : ks) {
      const ReplicatedResult r = RunReplicated(
          replications, env_params.topology.seed,
          [&](std::uint64_t seed) {
            EnvironmentParams p = env_params;
            p.topology.seed = seed;
            p.prefixes.seed = seed ^ 0xabcdef12345ULL;
            SimEnvironment env = BuildEnvironment(p);
            ResponseTimeConfig c = rt;
            c.k = k;
            c.workload.seed = seed + 1;
            return RunResponseTimeExperiment(env, c).mean();
          });
      table.AddRow({std::to_string(k), std::to_string(replications),
                    TextTable::FormatDouble(r.mean),
                    "+-" + TextTable::FormatDouble(r.ci95_half, 2)});
    }
    std::printf("%s", table.Render().c_str());
    finish_observability();
    return 0;
  }

  std::printf("building environment: %u ASs (seed %llu%s)...\n",
              env_params.topology.num_nodes,
              (unsigned long long)env_params.topology.seed,
              env_params.topology.geographic ? ", geographic" : "");
  SimEnvironment env = [&] {
    // Optional topology cache: load the AS graph from disk when present,
    // generate-and-save otherwise, so repeated studies share the network.
    if (topology_file.empty()) return BuildEnvironment(env_params);
    if (std::ifstream probe(topology_file); probe.good()) {
      std::printf("loading topology from %s\n", topology_file.c_str());
      return SimEnvironment{LoadTopologyFromFile(topology_file),
                            GeneratePrefixTable(env_params.prefixes),
                            nullptr};
    }
    SimEnvironment fresh = BuildEnvironment(env_params);
    SaveTopologyToFile(fresh.graph, topology_file);
    std::printf("saved topology to %s\n", topology_file.c_str());
    return fresh;
  }();

  if (experiment == "response_time") {
    const auto sweep = RunResponseTimeSweep(env, ks, rt);
    TextTable table({"K", "lookups", "mean (ms)", "median (ms)",
                     "p95 (ms)"});
    for (const auto& [k, samples] : sweep) {
      const ResponseTimeSummary s = Summarize(samples);
      table.AddRow({std::to_string(k), std::to_string(s.count),
                    TextTable::FormatDouble(s.mean_ms),
                    TextTable::FormatDouble(s.median_ms),
                    TextTable::FormatDouble(s.p95_ms)});
    }
    std::printf("%s", table.Render().c_str());
  } else if (experiment == "churn") {
    ChurnExperimentConfig churn;
    churn.base = rt;
    churn.base.k = ks.empty() ? 5 : ks.back();
    const auto sweep = RunChurnSweep(env, churn_fractions, churn);
    TextTable table({"churn", "lookups", "mean (ms)", "median (ms)",
                     "p95 (ms)"});
    for (const auto& [fraction, samples] : sweep) {
      const ResponseTimeSummary s = Summarize(samples);
      table.AddRow({TextTable::FormatDouble(fraction * 100, 1) + "%",
                    std::to_string(s.count),
                    TextTable::FormatDouble(s.mean_ms),
                    TextTable::FormatDouble(s.median_ms),
                    TextTable::FormatDouble(s.p95_ms)});
    }
    std::printf("%s", table.Render().c_str());
  } else if (experiment == "load_balance") {
    LoadBalanceConfig lb;
    lb.threads = sim.threads;
    lb.metrics = rt.metrics;
    lb.k = ks.empty() ? 5 : ks.back();
    lb.num_guids = rt.workload.num_guids;
    const LoadBalanceResult result = RunLoadBalanceExperiment(env, lb);
    std::printf("NLR over %zu announcing ASs: median %.3f, "
                "in [0.4, 1.6]: %.1f%%, deputy fallbacks: %llu\n",
                result.nlr.count(), result.nlr.Quantile(0.5),
                100 * FractionWithin(result.nlr, 0.4, 1.6),
                (unsigned long long)result.deputy_fallbacks);
  } else if (experiment == "staleness") {
    TextTable table({"move interval", "lookups", "stale %", "rechecks",
                     "t.fresh p95 (ms)"});
    for (const double interval_s : move_intervals) {
      StalenessConfig sc;
      sc.num_hosts = std::uint32_t(rt.workload.num_guids);
      sc.mean_move_interval_s = interval_s;
      sc.k = ks.empty() ? 5 : ks.back();
      sc.metrics = rt.metrics;
      sc.tracer = rt.tracer;
      const StalenessReport r = RunStalenessExperiment(env, sc);
      table.AddRow(
          {TextTable::FormatDouble(interval_s, 0) + " s",
           std::to_string(r.lookups),
           TextTable::FormatDouble(100 * r.stale_fraction, 3) + "%",
           r.rechecks.count() == 0
               ? "-"
               : TextTable::FormatDouble(r.rechecks.mean(), 2),
           r.time_to_fresh_ms.count() == 0
               ? "-"
               : TextTable::FormatDouble(
                     r.time_to_fresh_ms.Quantile(0.95))});
    }
    std::printf("%s", table.Render().c_str());
  } else if (experiment == "offered_load") {
    OfferedLoadConfig ol;
    ol.base = rt;
    ol.base.k = ks.empty() ? 5 : ks.back();
    if (!ol.base.serving.enabled) {
      // No `serving` key: a sensible finite default, matching the fig8
      // bench — an M/M/1-per-AS with a 64-deep queue.
      ol.base.serving.enabled = true;
      ol.base.serving.model = ServiceModel::kExponential;
      ol.base.serving.service_rate_per_s = 500.0;
    }
    ol.arrivals.horizon_s = horizon_s;
    ol.offered_rates_per_s = offered_rates;
    const OfferedLoadResult result = RunOfferedLoadSweep(env, ol);
    TextTable table({"offered/s", "lookups", "goodput/s", "p50 (ms)",
                     "p99 (ms)", "p999 (ms)", "qdelay (ms)", "shed",
                     "rho*"});
    for (const OfferedLoadPoint& p : result.points) {
      table.AddRow({TextTable::FormatDouble(p.offered_per_s, 0),
                    std::to_string(p.lookups),
                    TextTable::FormatDouble(p.goodput_per_s, 0),
                    TextTable::FormatDouble(p.p50_ms),
                    TextTable::FormatDouble(p.p99_ms),
                    TextTable::FormatDouble(p.p999_ms),
                    TextTable::FormatDouble(p.mean_queue_delay_ms),
                    std::to_string(p.tier_shed),
                    TextTable::FormatDouble(p.hottest_mm1.utilization)});
    }
    std::printf("%s", table.Render().c_str());
    std::printf("analytic saturation %.0f/s, measured knee %s\n",
                result.analytic_saturation_per_s,
                result.measured_knee_per_s > 0
                    ? (TextTable::FormatDouble(result.measured_knee_per_s,
                                               0) +
                       "/s")
                          .c_str()
                    : "(none)");
  } else if (experiment == "baselines") {
    const auto rows = RunBaselineComparison(env, rt, rt.workload.num_guids / 10);
    TextTable table({"scheme", "lookup mean (ms)", "lookup p95 (ms)",
                     "update mean (ms)"});
    for (const auto& row : rows) {
      table.AddRow({row.scheme,
                    TextTable::FormatDouble(row.lookup.mean_ms),
                    TextTable::FormatDouble(row.lookup.p95_ms),
                    TextTable::FormatDouble(row.update.mean_ms)});
    }
    std::printf("%s", table.Render().c_str());
  } else {
    std::fprintf(stderr, "unknown experiment '%s'\n", experiment.c_str());
    return 2;
  }
  finish_observability();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::strcmp(argv[1], "--print-defaults") == 0) {
    std::printf(
        "experiment = response_time\nases = 8000\nseed = 42\n"
        "geographic = false\nguids = 20000\nlookups = 100000\n"
        "workload_seed = 1\nks = 1, 3, 5\n"
        "churn_fractions = 0.0, 0.05, 0.10\nlocal_replica = true\n"
        "replications = 1\ntopology_file =\nmove_intervals = 300, 60, 20, 5\n"
        "threads = 0\nshards = 0\npath_oracle = hub\nmetrics_out =\n"
        "trace_out =\n"
        "trace_sample = 1\nserving =\n"
        "offered_rates = 500, 1000, 2000, 4000\nhorizon_s = 5\n");
    return 0;
  }
  if (argc != 2) {
    std::fprintf(stderr,
                 "usage: %s <config-file> | --print-defaults\n", argv[0]);
    return 2;
  }
  try {
    return Run(dmap::Config::ParseFile(argv[1]));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
