// Content retrieval scenario (Figure 1's "VideoB"): GUIDs name abstract
// objects, not just hosts. A video is replicated at several hosting sites,
// so its GUID maps to multiple NAs; each client resolves the GUID once and
// fetches from the NA whose AS is nearest.
//
// Demonstrates: multi-homed mappings (NaSet), popularity-weighted clients,
// and the latency advantage of picking the closest NA from the resolved
// set.
//
//   ./build/examples/content_delivery
#include <cstdio>

#include "common/stats.h"
#include "core/dmap_service.h"
#include "sim/environment.h"
#include "topo/shortest_path.h"
#include "workload/workload.h"

int main() {
  using namespace dmap;

  const SimEnvironment env =
      BuildEnvironment(EnvironmentParams::Scaled(2000, /*seed=*/11));
  DMapOptions options;
  options.k = 5;
  DMapService dmap(env.graph, env.table, options);

  // Pick hosting sites the way a CDN would: estimate each candidate AS's
  // average RTT over a client sample and deploy at the three most central,
  // comparable sites — per-client path differences then decide which one
  // serves whom.
  PathOracle placement_oracle(env.graph, /*capacity=*/128);
  std::vector<AsId> candidates;
  for (AsId as = 0; as < env.graph.num_nodes(); ++as) {
    if (env.graph.Degree(as) >= 6 && env.graph.IntraLatencyMs(as) < 3.0) {
      candidates.push_back(as);
    }
  }
  std::vector<double> avg_rtt(candidates.size(), 0.0);
  {
    Rng probe_rng(99);
    constexpr int kProbes = 100;
    for (int p = 0; p < kProbes; ++p) {
      const AsId client = AsId(probe_rng.NextBounded(env.graph.num_nodes()));
      const auto latencies = placement_oracle.LatenciesFrom(client);
      for (std::size_t j = 0; j < candidates.size(); ++j) {
        const AsId site = candidates[j];
        avg_rtt[j] += 2.0 * (env.graph.IntraLatencyMs(client) +
                             double(latencies[site]) +
                             env.graph.IntraLatencyMs(site));
      }
    }
  }
  std::vector<std::size_t> order(candidates.size());
  for (std::size_t j = 0; j < order.size(); ++j) order[j] = j;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return avg_rtt[a] < avg_rtt[b];
  });
  const std::vector<AsId> sites{candidates[order[0]], candidates[order[1]],
                                candidates[order[2]]};

  // The video's GUID carries one NA per hosting site.
  const Guid video = GuidFromKeyMaterial(std::vector<std::uint8_t>{
      'v', 'i', 'd', 'e', 'o', '-', 'B'});
  (void)dmap.Insert(video, NetworkAddress{sites[0], 80});
  for (std::size_t i = 1; i < sites.size(); ++i) {
    (void)dmap.AddAttachment(video, NetworkAddress{sites[i], 80});
  }
  std::printf("content GUID %s... hosted at ASs %u, %u, %u\n\n",
              video.ToHex().substr(0, 16).c_str(), sites[0], sites[1],
              sites[2]);

  // Clients from end-node-weighted ASs resolve and fetch.
  WorkloadParams params;
  params.num_guids = 1;  // only used for source sampling here
  params.seed = 3;
  WorkloadGenerator clients(env.graph, params);
  PathOracle oracle(env.graph);

  SampleSet resolution_ms, nearest_fetch_ms, first_na_fetch_ms;
  constexpr int kClients = 200;
  for (int c = 0; c < kClients; ++c) {
    const AsId client = clients.Lookups(1, false)[0].source;
    const LookupResult r = dmap.Lookup(video, client);
    if (!r.found) continue;
    resolution_ms.Add(r.latency_ms);

    // Naive strategy: fetch from whichever NA came first.
    first_na_fetch_ms.Add(oracle.RttMs(client, r.nas[0].as));
    // DMap-enabled strategy: fetch from the nearest NA in the set.
    double best = 1e18;
    for (const NetworkAddress& na : r.nas) {
      best = std::min(best, oracle.RttMs(client, na.as));
    }
    nearest_fetch_ms.Add(best);
  }

  std::printf("%zu clients resolved the GUID\n", resolution_ms.count());
  std::printf("  resolution:        mean %6.1f ms, p95 %6.1f ms\n",
              resolution_ms.mean(), resolution_ms.Quantile(0.95));
  std::printf("  fetch, first NA:   mean %6.1f ms RTT\n",
              first_na_fetch_ms.mean());
  std::printf("  fetch, nearest NA: mean %6.1f ms RTT  (%.0f%% faster via "
              "multi-NA mappings)\n",
              nearest_fetch_ms.mean(),
              100.0 * (1.0 - nearest_fetch_ms.mean() /
                                 first_na_fetch_ms.mean()));
  return 0;
}
