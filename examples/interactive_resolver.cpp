// Interactive DMap console: a small REPL for exploring the system by hand.
// Reads commands from stdin; great for demos and debugging.
//
//   ./build/examples/interactive_resolver
//
// Commands:
//   insert <name> <as>        register a named host attached to <as>
//   lookup <name> <from-as>   resolve it from a vantage AS
//   move <name> <as>          mobility update
//   fail <as> / recover <as>  toggle a router failure
//   replicas <name>           show the K replica ASs and hole rehashes
//   stats                     storage totals and the busiest ASs
//   help / quit
//
// Names are hashed into self-certifying GUIDs, so any string works.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/dmap_service.h"
#include "sim/environment.h"

namespace {

dmap::Guid GuidFor(const std::string& name) {
  return dmap::GuidFromKeyMaterial(std::vector<std::uint8_t>(
      name.begin(), name.end()));
}

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  insert <name> <as>        register host <name> at AS <as>\n"
      "  lookup <name> <from-as>   resolve from a vantage AS\n"
      "  move <name> <as>          mobility update\n"
      "  fail <as> | recover <as>  toggle router failure\n"
      "  replicas <name>           show replica placement\n"
      "  stats                     storage distribution summary\n"
      "  help | quit\n");
}

}  // namespace

int main() {
  using namespace dmap;

  const SimEnvironment env =
      BuildEnvironment(EnvironmentParams::Scaled(1000));
  DMapOptions options;
  options.k = 5;
  DMapService service(env.graph, env.table, options);
  std::unordered_set<AsId> failed;

  std::printf("DMap interactive console — %u ASs, %zu prefixes, K=%d\n",
              env.graph.num_nodes(), env.table.num_prefixes(), options.k);
  PrintHelp();

  std::string line;
  std::printf("> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    try {
      if (cmd == "quit" || cmd == "exit") {
        break;
      } else if (cmd == "help") {
        PrintHelp();
      } else if (cmd == "insert" || cmd == "move") {
        std::string name;
        AsId as;
        if (!(in >> name >> as) || as >= env.graph.num_nodes()) {
          std::printf("usage: %s <name> <as 0..%u>\n", cmd.c_str(),
                      env.graph.num_nodes() - 1);
        } else {
          const Guid guid = GuidFor(name);
          const UpdateResult r =
              cmd == "insert"
                  ? service.Insert(guid, NetworkAddress{as, 1})
                  : service.Update(guid, NetworkAddress{as, 1});
          std::printf("%s '%s' at AS %u: v%llu, %zu replicas, %.1f ms\n",
                      cmd.c_str(), name.c_str(), as,
                      (unsigned long long)r.version, r.replicas.size(),
                      r.latency_ms);
        }
      } else if (cmd == "lookup") {
        std::string name;
        AsId from;
        if (!(in >> name >> from) || from >= env.graph.num_nodes()) {
          std::printf("usage: lookup <name> <from-as>\n");
        } else {
          const LookupResult r = service.Lookup(GuidFor(name), from);
          if (!r.found) {
            std::printf("'%s' NOT FOUND (%d probes, %.1f ms wasted)\n",
                        name.c_str(), r.attempts, r.latency_ms);
          } else {
            std::printf("'%s' -> %s via AS %u in %.1f ms (%d probe%s%s)\n",
                        name.c_str(), ToString(r.nas[0]).c_str(),
                        r.serving_as, r.latency_ms, r.attempts,
                        r.attempts == 1 ? "" : "s",
                        r.served_locally ? ", local replica" : "");
          }
        }
      } else if (cmd == "replicas") {
        std::string name;
        if (!(in >> name)) {
          std::printf("usage: replicas <name>\n");
        } else {
          for (const HostResolution& r :
               service.resolver().ResolveAll(GuidFor(name))) {
            std::printf("  h -> %s -> AS %-5u (%d hash%s%s)\n",
                        r.stored_address.ToString().c_str(), r.host,
                        r.hash_count, r.hash_count == 1 ? "" : "es",
                        r.used_nearest ? ", deputy via IP distance" : "");
          }
        }
      } else if (cmd == "fail" || cmd == "recover") {
        AsId as;
        if (!(in >> as) || as >= env.graph.num_nodes()) {
          std::printf("usage: %s <as>\n", cmd.c_str());
        } else {
          if (cmd == "fail") {
            failed.insert(as);
          } else {
            failed.erase(as);
          }
          service.SetFailedAses({failed.begin(), failed.end()});
          std::printf("%zu AS(s) failed\n", failed.size());
        }
      } else if (cmd == "stats") {
        const auto sizes = service.StoreSizes();
        std::vector<std::pair<std::size_t, AsId>> busiest;
        std::uint64_t total = 0;
        for (AsId as = 0; as < sizes.size(); ++as) {
          total += sizes[as];
          if (sizes[as] > 0) busiest.emplace_back(sizes[as], as);
        }
        std::sort(busiest.rbegin(), busiest.rend());
        std::printf("%llu mapping entries across %zu ASs (%.1f KB wire "
                    "format)\n",
                    (unsigned long long)total, busiest.size(),
                    double(total) * kMappingEntryBits / 8.0 / 1024.0);
        for (std::size_t i = 0; i < std::min<std::size_t>(5, busiest.size());
             ++i) {
          std::printf("  AS %-5u holds %zu\n", busiest[i].second,
                      busiest[i].first);
        }
      } else if (!cmd.empty()) {
        std::printf("unknown command '%s' (try 'help')\n", cmd.c_str());
      }
    } catch (const std::exception& e) {
      std::printf("error: %s\n", e.what());
    }
    std::printf("> ");
    std::fflush(stdout);
  }
  std::printf("\nbye\n");
  return 0;
}
