// Quickstart: the smallest complete DMap deployment.
//
// Builds a synthetic 1000-AS Internet (topology + BGP prefix table),
// brings up the DMap service, registers a device's GUID, and resolves it
// from another AS — printing what happened at each step.
//
//   ./build/examples/quickstart
#include <cstdio>

#include "core/dmap_service.h"
#include "sim/environment.h"

int main() {
  using namespace dmap;

  // 1. A miniature Internet: AS-level topology plus announced prefixes.
  const SimEnvironment env =
      BuildEnvironment(EnvironmentParams::Scaled(/*num_ases=*/1000));
  std::printf("network: %u ASs, %zu inter-AS links, %zu announced prefixes "
              "(%.0f%% of the address space)\n",
              env.graph.num_nodes(), env.graph.num_links(),
              env.table.num_prefixes(),
              100 * env.table.announced_fraction());

  // 2. The DMap service: K = 5 replicas, Algorithm 1 with M = 10 rehashes,
  //    local-replica optimisation on.
  DMapOptions options;
  options.k = 5;
  DMapService dmap(env.graph, env.table, options);

  // 3. A phone attaches to AS 700 and registers its (self-certifying)
  //    GUID. In MobilityFirst the GUID would be the hash of a public key.
  const Guid phone = GuidFromKeyMaterial(
      std::vector<std::uint8_t>{'p', 'h', 'o', 'n', 'e', '-', 'k', 'e', 'y'});
  const UpdateResult reg = dmap.Insert(phone, NetworkAddress{700, 1});
  std::printf("\nregistered GUID %s...\n", phone.ToHex().substr(0, 16).c_str());
  std::printf("  replicas at ASs:");
  for (const AsId as : reg.replicas) std::printf(" %u", as);
  std::printf("\n  update latency (max over parallel replica writes): "
              "%.1f ms\n",
              reg.latency_ms);

  // 4. A correspondent in AS 42 resolves the GUID: the border gateway
  //    hashes it K times, picks the closest replica, one overlay hop.
  const LookupResult hit = dmap.Lookup(phone, /*querier=*/42);
  std::printf("\nlookup from AS 42: %s\n", hit.found ? "FOUND" : "MISS");
  std::printf("  answer: %s\n", ToString(hit.nas[0]).c_str());
  std::printf("  served by AS %u in %.1f ms (%d replica probe%s)\n",
              hit.serving_as, hit.latency_ms, hit.attempts,
              hit.attempts == 1 ? "" : "s");

  // 5. The phone moves to AS 900; the next lookup follows it.
  (void)dmap.Update(phone, NetworkAddress{900, 2});
  const LookupResult after_move = dmap.Lookup(phone, 42);
  std::printf("\nafter mobility update, lookup resolves to %s "
              "(%.1f ms)\n",
              ToString(after_move.nas[0]).c_str(), after_move.latency_ms);
  return 0;
}
