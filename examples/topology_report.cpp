// Prints the measurable properties of the synthetic AS topology next to
// the published Internet values it substitutes for (see DESIGN.md section
// 2) — the evidence that the DIMES-replacement preserves the statistics the
// experiments depend on.
//
//   ./build/examples/topology_report [num_ases]
#include <cstdio>
#include <cstdlib>

#include "topo/generator.h"
#include "topo/jellyfish.h"
#include "topo/stats.h"

int main(int argc, char** argv) {
  using namespace dmap;

  const std::uint32_t num_ases =
      argc > 1 ? std::uint32_t(std::atoi(argv[1])) : 8000;
  std::printf("generating %u-AS topology...\n\n", num_ases);
  const AsGraph g =
      GenerateInternetTopology(ScaledTopologyParams(num_ases, 42));

  Rng rng(1);
  const TopologyStats stats = ComputeTopologyStats(g, 16, rng);
  std::printf("%-28s %12s   %s\n", "property", "this graph",
              "Internet (published)");
  std::printf("%-28s %12u   26,424 (DIMES)\n", "nodes", stats.nodes);
  std::printf("%-28s %12llu   90,267 (DIMES)\n", "links",
              (unsigned long long)stats.links);
  std::printf("%-28s %12.2f   ~6.8\n", "mean degree", stats.mean_degree);
  std::printf("%-28s %12u   thousands (tier-1 hubs)\n", "max degree",
              stats.max_degree);
  std::printf("%-28s %11.1f%%   ~30-40%% (stub ASs)\n",
              "degree-1 fraction", 100 * stats.stub_fraction);
  std::printf("%-28s %12.2f   ~2.1 (power-law tail)\n",
              "degree tail exponent", stats.degree_powerlaw_alpha);
  std::printf("%-28s %12.2f   ~3.5-4.2 AS hops\n", "mean path length",
              stats.mean_path_hops);
  std::printf("%-28s %12u   ~10-11\n", "diameter (lower bound)",
              stats.diameter_lower_bound);

  const JellyfishDecomposition d = DecomposeJellyfish(g);
  std::printf("\njellyfish layers (Section V's model):\n");
  std::printf("  core clique: %zu ASs\n", d.core.size());
  for (int j = 0; j < d.num_layers(); ++j) {
    std::printf("  Layer(%d): %6u ASs (%.1f%%)\n", j, d.layer_size[j],
                100 * d.layer_ratio[j]);
  }
  std::printf("\n(iPlane, for comparison: 8 layers with >60%% of nodes in "
              "layers 3-4)\n");
  return 0;
}
