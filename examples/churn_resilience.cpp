// BGP churn and the repair protocol of Section III-D-1, end to end.
//
// Mappings are placed under today's prefix table; then 5% of prefixes are
// withdrawn and new ones announced. Queriers whose tables already reflect
// the new state miss at displaced replicas and pay extra round trips —
// until the repair protocol (withdrawing ASs hand mappings to their deputy;
// announcing ASs pull orphans on first query) re-homes the affected GUIDs.
//
//   ./build/examples/churn_resilience
#include <cstdio>

#include "bgp/churn.h"
#include "common/stats.h"
#include "core/dmap_service.h"
#include "sim/environment.h"
#include "workload/workload.h"

namespace {

dmap::SampleSet MeasureLookups(dmap::DMapService& service,
                               dmap::WorkloadGenerator& workload,
                               std::uint64_t count, int* max_attempts) {
  dmap::SampleSet samples;
  *max_attempts = 0;
  for (const dmap::LookupOp& op : workload.Lookups(count)) {
    const dmap::LookupResult r = service.Lookup(op.guid, op.source);
    if (!r.found) continue;
    samples.Add(r.latency_ms);
    *max_attempts = std::max(*max_attempts, r.attempts);
  }
  return samples;
}

}  // namespace

int main() {
  using namespace dmap;

  SimEnvironment env =
      BuildEnvironment(EnvironmentParams::Scaled(2000, /*seed=*/13));
  DMapOptions options;
  options.k = 5;
  options.local_replica = false;
  DMapService dmap(env.graph, env.table, options);

  WorkloadParams params;
  params.num_guids = 5000;
  params.seed = 17;
  WorkloadGenerator workload(env.graph, params);
  for (const InsertOp& op : workload.Inserts()) (void)dmap.Insert(op.guid, op.na);
  std::printf("placed %llu GUIDs x 5 replicas under the current BGP table\n",
              (unsigned long long)params.num_guids);

  int attempts = 0;
  const SampleSet before = MeasureLookups(dmap, workload, 20000, &attempts);
  std::printf("\nbefore churn:  mean %5.1f ms, p95 %6.1f ms, worst probe "
              "chain %d\n",
              before.mean(), before.Quantile(0.95), attempts);

  // 5% of prefixes churn. The service resolves against the live table, so
  // queries now sometimes hash to ASs that never received the mapping.
  Rng rng(19);
  ChurnParams churn;
  churn.withdraw_fraction = 0.025;
  churn.announce_fraction = 0.025;
  churn.num_ases = env.graph.num_nodes();
  const ChurnPlan plan = SampleChurn(env.table, churn, rng);
  ApplyChurn(env.table, plan);
  std::printf("\napplied churn: %zu prefixes withdrawn, %zu announced\n",
              plan.withdrawals.size(), plan.announcements.size());

  const SampleSet during = MeasureLookups(dmap, workload, 20000, &attempts);
  std::printf("during window: mean %5.1f ms, p95 %6.1f ms, worst probe "
              "chain %d  <- orphaned mappings cost retries\n",
              during.mean(), during.Quantile(0.95), attempts);

  // Repair: re-home every GUID whose replica set changed (the aggregate
  // effect of the deputy handoff + migrate-on-first-query protocol).
  int moved = 0;
  for (std::uint64_t i = 0; i < params.num_guids; ++i) {
    moved += dmap.Rehome(workload.GuidAt(i));
  }
  std::printf("\nrepair protocol re-homed %d replica placements\n", moved);

  const SampleSet after = MeasureLookups(dmap, workload, 20000, &attempts);
  std::printf("after repair:  mean %5.1f ms, p95 %6.1f ms, worst probe "
              "chain %d\n",
              after.mean(), after.Quantile(0.95), attempts);
  return 0;
}
