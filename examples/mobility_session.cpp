// Mobility scenario from the paper's introduction: a 30-minute voice call
// to a phone that changes network attachment many times while the call is
// up. The correspondent re-resolves the GUID after every move; the paper's
// requirement is that resolution completes well inside voice-handoff
// budgets (~100 ms for the 95th percentile).
//
// Run on the discrete-event kernel: moves and re-resolutions are scheduled
// events, and the staleness window of Section III-D-2 (query racing an
// in-flight update) is shown explicitly.
//
//   ./build/examples/mobility_session
#include <cstdio>

#include "common/stats.h"
#include "core/dmap_service.h"
#include "event/simulator.h"
#include "sim/environment.h"
#include "sim/event_driven.h"

int main() {
  using namespace dmap;

  const SimEnvironment env =
      BuildEnvironment(EnvironmentParams::Scaled(2000, /*seed=*/7));
  DMapOptions options;
  options.k = 5;
  DMapService dmap(env.graph, env.table, options);

  const Guid phone = Guid::FromSequence(0xca11);
  const AsId correspondent = 55;
  (void)dmap.Insert(phone, NetworkAddress{100, 1});

  Simulator sim;
  EventDrivenLookup resolver(sim, dmap);
  SampleSet handoff_latencies;

  // The phone's trajectory: a new AS every ~2 minutes of simulated time.
  const std::vector<AsId> trajectory{250, 400, 620, 800, 1100, 1400, 1777};
  std::printf("voice call established: correspondent AS %u -> phone "
              "(AS 100)\n\n",
              correspondent);

  for (std::size_t i = 0; i < trajectory.size(); ++i) {
    const SimTime move_time = SimTime::Seconds(120.0 * double(i + 1));
    const AsId new_as = trajectory[i];
    sim.ScheduleAt(move_time, [&, new_as, i] {
      // The binding update propagates to all replicas in parallel; until it
      // lands, queriers can still receive the previous NA (Section
      // III-D-2) and retry.
      const UpdateResult up =
          dmap.Update(phone, NetworkAddress{new_as, std::uint32_t(i) + 2});
      std::printf("t=%7.1fs  phone re-attached to AS %-5u (update took "
                  "%5.1f ms across %zu replicas)\n",
                  sim.Now().seconds(), new_as, up.latency_ms,
                  up.replicas.size());

      // The correspondent notices loss of connectivity and re-resolves.
      resolver.LookupAsync(
          phone, correspondent, SimTime::Millis(1.0),
          [&, new_as](const LookupResult& r) {
            handoff_latencies.Add(r.latency_ms);
            const bool fresh = r.found && r.nas.AttachedTo(new_as);
            std::printf("t=%7.1fs  re-resolution: %s at %s in %5.1f ms%s\n",
                        sim.Now().seconds(), r.found ? "phone" : "nothing",
                        r.found ? ToString(r.nas[0]).c_str() : "-",
                        r.latency_ms,
                        fresh ? "" : "  [stale - would retry]");
          });
    });
  }

  sim.Run();

  std::printf("\nhandoff re-resolution latency: mean %.1f ms, worst %.1f ms "
              "across %zu moves\n",
              handoff_latencies.mean(), handoff_latencies.max(),
              handoff_latencies.count());
  std::printf("(paper: 95th percentile below ~100 ms is adequate for voice "
              "handoff; WiFi/IP handoffs themselves take 0.5-1 s)\n");
  return 0;
}
