// The sparse-address-space story (Section III-B, Figure 3) end to end on
// IPv6: announced prefixes cover ~10^-9 of the 64-bit routing space, so
// Algorithm 1's rehash-until-hit would need a billion hash evaluations per
// resolution — while the two-level bucket index always resolves in exactly
// two, to the same deterministic answer at every border gateway.
//
//   ./build/examples/ipv6_bucketing
#include <cstdio>
#include <map>

#include "common/rng.h"
#include "core/ipv6_index.h"

int main() {
  using namespace dmap;

  // A synthetic IPv6 DFZ: 30,000 announcements, mostly /48 and /32, spread
  // over the global-unicast 2000::/3 the way RIRs hand them out.
  Rng rng(2001);
  std::vector<AnnouncedIpv6Prefix> announcements;
  constexpr int kPrefixes = 30'000;
  constexpr std::uint32_t kAses = 5'000;
  for (int i = 0; i < kPrefixes; ++i) {
    const std::uint64_t hi =
        0x2000000000000000ULL | (rng.Next() >> 3 & 0x1fffffffffff0000ULL);
    const int length = rng.NextBernoulli(0.7) ? 48 : 32;
    announcements.push_back(AnnouncedIpv6Prefix{
        Cidr6(Ipv6Address(hi, 0), length), AsId(rng.NextBounded(kAses))});
  }

  double announced = 0;
  for (const auto& a : announcements) {
    announced += double(a.prefix.ToRoutingSegment().size);
  }
  const double density = announced / 1.8446744e19;
  std::printf("announced density of the 64-bit routing space: %.2e\n",
              density);
  std::printf("rehash-until-hit would need ~%.0f hash evaluations per "
              "resolution;\nthe bucket index needs exactly 2.\n\n",
              1.0 / density);

  const GuidHashFamily hashes(5, 0x5eedf00dULL);
  const Ipv6BucketIndex index(announcements, /*num_buckets=*/16'384, hashes);
  std::printf("bucket index: %zu segments in %u buckets (max %zu per "
              "bucket)\n\n",
              index.index().num_segments(), index.index().num_buckets(),
              index.index().max_bucket_size());

  // Resolve a handful of GUIDs; any two gateways agree on the placement.
  for (int i = 0; i < 3; ++i) {
    const Guid guid = Guid::FromSequence(std::uint64_t(0xcafe + i));
    std::printf("GUID %s...\n", guid.ToHex().substr(0, 16).c_str());
    for (int replica = 0; replica < 5; ++replica) {
      const auto r = index.Resolve(guid, replica);
      std::printf("  replica %d -> %-28s hosted by AS %u\n", replica + 1,
                  r.address.ToString().c_str(), r.host);
    }
  }

  // Storage load spreads across segments like Figure 6's NLR spreads
  // across ASs.
  std::map<AsId, int> per_as;
  constexpr int kGuids = 200'000;
  for (int i = 0; i < kGuids; ++i) {
    per_as[index.Resolve(Guid::FromSequence(std::uint64_t(i)), 0).host] += 1;
  }
  std::printf("\n%d GUIDs spread over %zu of %u ASs (first replica only)\n",
              kGuids, per_as.size(), kAses);
  return 0;
}
